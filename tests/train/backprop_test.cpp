// Finite-difference validation of the manual backward pass, for every
// architecture family. This is the test that pins down the entire training
// stack: attention, RoPE, both norms, gated and plain MLPs, embeddings.
#include "train/backprop.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ft2 {
namespace {

ModelConfig grad_config(ArchFamily arch) {
  ModelConfig c;
  c.name = "gradcheck";
  c.arch = arch;
  c.vocab_size = 13;
  c.d_model = 8;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 10;
  c.max_seq = 12;
  switch (arch) {
    case ArchFamily::kOpt:
      break;
    case ArchFamily::kGptj:
      c.activation = Activation::kGelu;
      c.position = PositionKind::kRotary;
      c.parallel_block = true;
      break;
    case ArchFamily::kLlama:
      c.activation = Activation::kSilu;
      c.norm = NormKind::kRmsNorm;
      c.position = PositionKind::kRotary;
      c.linear_bias = false;
      c.qkv_bias = true;
      break;
  }
  return c;
}

TrainSequence test_sequence() {
  TrainSequence seq;
  seq.tokens = {1, 5, 9, 3, 7, 2};
  seq.loss_weight = {0.1f, 0.1f, 1.0f, 1.0f, 1.0f};
  return seq;
}

class GradCheckTest : public ::testing::TestWithParam<ArchFamily> {};

TEST_P(GradCheckTest, AnalyticMatchesFiniteDifference) {
  const ModelConfig config = grad_config(GetParam());
  Xoshiro256 rng(31);
  TransformerLM model(config, init_weights(config, rng));
  const TrainSequence seq = test_sequence();

  GradStore grads(model.weights());
  const float loss = forward_backward(model, seq, grads);
  EXPECT_GT(loss, 0.0f);
  EXPECT_TRUE(std::isfinite(loss));

  // Check a deterministic subsample of coordinates of every parameter.
  auto params = model.weights().named_parameters();
  const double eps = 1e-3;
  std::size_t checked = 0;
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& t = *params[p].second;
    const Tensor& g = grads.grad_at(p);
    const std::size_t stride = std::max<std::size_t>(1, t.numel() / 5);
    for (std::size_t i = 0; i < t.numel(); i += stride) {
      const float saved = t[i];
      t[i] = saved + static_cast<float>(eps);
      const double lp = static_cast<double>(forward_loss(model, seq));
      t[i] = saved - static_cast<float>(eps);
      const double lm = static_cast<double>(forward_loss(model, seq));
      t[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = static_cast<double>(g[i]);
      const double tol = 2e-3 + 0.02 * std::abs(numeric);
      EXPECT_NEAR(analytic, numeric, tol)
          << params[p].first << "[" << i << "]";
      ++checked;
    }
  }
  EXPECT_GT(checked, 50u);
}

TEST_P(GradCheckTest, ZeroWeightPositionsGetNoGradient) {
  const ModelConfig config = grad_config(GetParam());
  Xoshiro256 rng(5);
  TransformerLM model(config, init_weights(config, rng));

  // All weights zero -> loss 0 and all grads 0.
  TrainSequence seq = test_sequence();
  seq.loss_weight.assign(seq.loss_weight.size(), 0.0f);
  GradStore grads(model.weights());
  const float loss = forward_backward(model, seq, grads);
  EXPECT_EQ(loss, 0.0f);
  for (std::size_t p = 0; p < grads.size(); ++p) {
    for (float f : grads.grad_at(p).span()) EXPECT_EQ(f, 0.0f);
  }
}

TEST_P(GradCheckTest, GradientsAccumulateAcrossSequences) {
  const ModelConfig config = grad_config(GetParam());
  Xoshiro256 rng(6);
  TransformerLM model(config, init_weights(config, rng));
  const TrainSequence seq = test_sequence();

  GradStore once(model.weights());
  forward_backward(model, seq, once);
  GradStore twice(model.weights());
  forward_backward(model, seq, twice);
  forward_backward(model, seq, twice);

  for (std::size_t p = 0; p < once.size(); ++p) {
    const auto& g1 = once.grad_at(p);
    const auto& g2 = twice.grad_at(p);
    for (std::size_t i = 0; i < g1.numel(); ++i) {
      EXPECT_NEAR(g2[i], 2.0f * g1[i], 1e-5f + 1e-4f * std::fabs(g1[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchs, GradCheckTest,
                         ::testing::Values(ArchFamily::kOpt, ArchFamily::kGptj,
                                           ArchFamily::kLlama),
                         [](const auto& info) {
                           switch (info.param) {
                             case ArchFamily::kOpt: return "Opt";
                             case ArchFamily::kGptj: return "Gptj";
                             default: return "Llama";
                           }
                         });

TEST(GradStore, LookupAndNorms) {
  const ModelConfig config = grad_config(ArchFamily::kOpt);
  Xoshiro256 rng(2);
  ModelWeights weights = init_weights(config, rng);
  GradStore grads(weights);
  EXPECT_GT(grads.size(), 10u);
  EXPECT_EQ(grads.global_norm(), 0.0);

  Tensor& g = grads.grad(weights.tok_emb);
  g[0] = 3.0f;
  g[1] = 4.0f;
  EXPECT_NEAR(grads.global_norm(), 5.0, 1e-9);
  grads.scale(2.0f);
  EXPECT_NEAR(grads.global_norm(), 10.0, 1e-9);
  grads.zero();
  EXPECT_EQ(grads.global_norm(), 0.0);

  Tensor foreign({2, 2});
  EXPECT_THROW(grads.grad(foreign), Error);
}

}  // namespace
}  // namespace ft2
