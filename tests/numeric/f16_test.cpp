// IEEE binary16 correctness. GCC's native _Float16 (hardware/softfp
// round-to-nearest-even) serves as the oracle for conversions.
#include "numeric/f16.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace ft2 {
namespace {

std::uint16_t native_f16_bits(float f) {
  const _Float16 h = static_cast<_Float16>(f);
  std::uint16_t bits;
  std::memcpy(&bits, &h, sizeof(bits));
  return bits;
}

float native_f16_to_float(std::uint16_t bits) {
  _Float16 h;
  std::memcpy(&h, &bits, sizeof(h));
  return static_cast<float>(h);
}

TEST(F16, ToFloatMatchesNativeForAllBitPatterns) {
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const float ours = f16::from_bits(bits).to_float();
    const float native = native_f16_to_float(bits);
    if (std::isnan(native)) {
      EXPECT_TRUE(std::isnan(ours)) << "bits=" << b;
    } else {
      EXPECT_EQ(ours, native) << "bits=" << b;
    }
  }
}

TEST(F16, FromFloatRoundTripsAllFinitePatterns) {
  // Every representable half must convert float->half exactly.
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const f16 h = f16::from_bits(bits);
    if (h.is_nan()) continue;
    const float f = h.to_float();
    EXPECT_EQ(f16::from_float(f).bits(), bits) << "bits=" << b;
  }
}

TEST(F16, FromFloatMatchesNativeRounding) {
  // Pseudo-random floats across the half range, plus halfway cases.
  std::uint64_t state = 12345;
  for (int i = 0; i < 200000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const float mag = std::ldexp(
        1.0f + static_cast<float>((state >> 40) & 0xFFFFFF) / 16777216.0f,
        static_cast<int>((state >> 10) % 36) - 18);
    const float f = (state & 1) ? -mag : mag;
    EXPECT_EQ(f16::from_float(f).bits(), native_f16_bits(f)) << "f=" << f;
  }
}

TEST(F16, OverflowGoesToInfinity) {
  EXPECT_TRUE(f16::from_float(65520.0f).is_inf());
  EXPECT_TRUE(f16::from_float(1e10f).is_inf());
  EXPECT_TRUE(f16::from_float(-65520.0f).is_inf());
  EXPECT_TRUE(f16::from_float(-1e10f).sign());
  EXPECT_EQ(f16::from_float(65519.0f).to_float(), 65504.0f);
  EXPECT_EQ(f16::from_float(65504.0f).to_float(), 65504.0f);
}

TEST(F16, SubnormalsConvertExactly) {
  const float smallest = std::ldexp(1.0f, -24);  // 2^-24, smallest subnormal
  EXPECT_EQ(f16::from_float(smallest).bits(), 0x0001u);
  EXPECT_EQ(f16::from_float(-smallest).bits(), 0x8001u);
  EXPECT_EQ(f16::from_float(smallest / 4.0f).bits(), 0x0000u);  // underflow
  EXPECT_EQ(f16::from_bits(0x0001).to_float(), smallest);
}

TEST(F16, NanHandling) {
  EXPECT_TRUE(f16::from_float(std::nanf("")).is_nan());
  EXPECT_TRUE(std::isnan(f16::from_bits(0x7C01).to_float()));
  EXPECT_TRUE(std::isnan(f16::from_bits(0xFFFF).to_float()));
  EXPECT_TRUE(f16::from_bits(0x7C00).is_inf());
  EXPECT_FALSE(f16::from_bits(0x7C00).is_nan());
}

TEST(F16, FieldAccessors) {
  const f16 two = f16::from_float(2.0f);
  EXPECT_EQ(two.exponent_bits(), 0x10);
  EXPECT_EQ(two.mantissa_bits(), 0);
  EXPECT_FALSE(two.sign());

  const f16 neg = f16::from_float(-1.5f);
  EXPECT_TRUE(neg.sign());
  EXPECT_EQ(neg.exponent_bits(), 0x0F);
  EXPECT_EQ(neg.mantissa_bits(), 0x200);
}

// The paper's NaN-vulnerable area: +/-(1, 2) — exponent pattern 01111 with a
// non-zero mantissa. Flipping the top exponent bit of such a value must
// produce NaN; values elsewhere must not.
TEST(F16, NanVulnerableAreaMatchesTopExponentFlip) {
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const f16 h = f16::from_bits(bits);
    if (h.is_nan() || h.is_inf()) continue;
    const float v = h.to_float();
    const auto flipped =
        f16::from_bits(static_cast<std::uint16_t>(bits ^ (1u << 14)));
    EXPECT_EQ(nan_vulnerable_f16(v), flipped.is_nan())
        << "bits=" << b << " v=" << v;
  }
}

TEST(F16, NanVulnerableExamples) {
  EXPECT_TRUE(nan_vulnerable_f16(1.5f));
  EXPECT_TRUE(nan_vulnerable_f16(-1.25f));
  EXPECT_TRUE(nan_vulnerable_f16(1.999f));
  EXPECT_FALSE(nan_vulnerable_f16(1.0f));   // mantissa 0 -> flips to inf
  EXPECT_FALSE(nan_vulnerable_f16(-1.0f));
  EXPECT_FALSE(nan_vulnerable_f16(0.5f));
  EXPECT_FALSE(nan_vulnerable_f16(2.0f));
  EXPECT_FALSE(nan_vulnerable_f16(0.0f));
}

TEST(F16, QuantizePreservesSpecials) {
  EXPECT_TRUE(std::isnan(quantize_f16(std::nanf(""))));
  EXPECT_TRUE(std::isinf(quantize_f16(std::numeric_limits<float>::infinity())));
  EXPECT_EQ(quantize_f16(0.0f), 0.0f);
  EXPECT_EQ(quantize_f16(1.0f), 1.0f);
  // 1/3 is not representable; result must be the nearest half.
  const float q = quantize_f16(1.0f / 3.0f);
  EXPECT_NE(q, 1.0f / 3.0f);
  EXPECT_NEAR(q, 1.0f / 3.0f, 1e-3f);
  EXPECT_EQ(quantize_f16(q), q);  // idempotent
}

TEST(F16, F32BitsRoundTrip) {
  for (float f : {0.0f, -1.5f, 3.14159f, 65504.0f, 1e-30f}) {
    EXPECT_EQ(f32_from_bits(f32_bits(f)), f);
  }
  EXPECT_TRUE(std::isnan(f32_from_bits(0x7FC00000u)));
}

// Figure 7 of the paper: flipping the highest exponent bit of a small value
// produces an extremely large value; of a NaN-vulnerable value, NaN.
TEST(F16, Figure7Examples) {
  const f16 small = f16::from_float(0.5f);
  const f16 big = f16::from_bits(
      static_cast<std::uint16_t>(small.bits() ^ (1u << 14)));
  EXPECT_GT(big.to_float(), 10000.0f);

  const f16 vulnerable = f16::from_float(1.5f);
  const f16 nan = f16::from_bits(
      static_cast<std::uint16_t>(vulnerable.bits() ^ (1u << 14)));
  EXPECT_TRUE(nan.is_nan());
}

}  // namespace
}  // namespace ft2
