#include "numeric/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ft2 {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  RunningStats rs;
  for (double x : xs) rs.add(x);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean, 1e-12);
  EXPECT_NEAR(rs.variance(), var, 1e-12);
  EXPECT_EQ(rs.min(), -3.0);
  EXPECT_EQ(rs.max(), 7.25);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256 rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.add(5.0);
  EXPECT_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(ProportionCI, WilsonProperties) {
  const auto ci = proportion_ci(10, 1000);
  EXPECT_NEAR(ci.p, 0.01, 1e-12);
  EXPECT_GT(ci.lo, 0.0);
  EXPECT_LT(ci.hi, 0.03);
  EXPECT_GT(ci.hi, ci.p);
  EXPECT_LT(ci.lo, ci.p);

  // Zero successes: lower bound is exactly 0, upper is positive.
  const auto zero = proportion_ci(0, 500);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_LT(zero.hi, 0.02);

  // All successes mirrors zero successes.
  const auto one = proportion_ci(500, 500);
  EXPECT_EQ(one.hi, 1.0);
  EXPECT_GT(one.lo, 0.98);

  // No trials.
  const auto none = proportion_ci(0, 0);
  EXPECT_EQ(none.p, 0.0);
  EXPECT_EQ(none.margin, 0.0);
}

TEST(ProportionCI, MarginShrinksWithTrials) {
  const auto small = proportion_ci(5, 100);
  const auto large = proportion_ci(500, 10000);
  EXPECT_LT(large.margin, small.margin);
}

TEST(Histogram, BinningAndEdges) {
  Histogram h(-1.0, 1.0, 4);
  h.add(-0.9);  // bin 0
  h.add(-0.1);  // bin 1
  h.add(0.1);   // bin 2
  h.add(0.9);   // bin 3
  h.add(5.0);   // clamps to last bin
  h.add(-5.0);  // clamps to first bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(3), 2u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 1.0);
}

TEST(Histogram, NanCountedSeparately) {
  Histogram h(0.0, 1.0, 2);
  h.add(std::nan(""));
  h.add(0.5);
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, FractionIn) {
  Histogram h(-4.0, 4.0, 8);
  for (double v : {0.5, 1.5, 1.7, -1.5, 3.0}) h.add(v);
  EXPECT_DOUBLE_EQ(h.fraction_in(1.0, 2.0), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(h.fraction_in(-2.0, -1.0), 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(h.fraction_in(10.0, 20.0), 0.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 1.0, 2), b(0.0, 1.0, 2);
  a.add(0.25);
  b.add(0.75);
  b.add(0.8);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bin_count(1), 2u);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

}  // namespace
}  // namespace ft2
