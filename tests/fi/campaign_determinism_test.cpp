// Campaign determinism across thread-pool sizes and trial partitions:
//   - run_campaign outcomes and per-trial records are identical under pools
//     of 1, 2 and 8 workers (trials are self-contained; partitioning is a
//     pure throughput knob);
//   - two run_campaign_range halves concatenate to the full-range result
//     with the same TrialRecord.plan per trial;
//   - the serve-engine fault_free_correct_fraction equals a serial
//     per-session reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/ft2.hpp"
#include "data/matcher.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(33);
  return TransformerLM(c, init_weights(c, rng));
}

bool same_plan(const FaultPlan& a, const FaultPlan& b) {
  return a.position == b.position && a.site == b.site && a.neuron == b.neuron &&
         a.vtype == b.vtype && a.in_first_token == b.in_first_token &&
         a.flips.count == b.flips.count && a.flips.bits == b.flips.bits;
}

/// Collects TrialRecords and orders them by global trial id (callback
/// arrival order depends on worker scheduling; trial ids do not).
std::vector<TrialRecord> sorted_records(std::vector<TrialRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const TrialRecord& a, const TrialRecord& b) {
              return a.trial < b.trial;
            });
  return records;
}

TEST(CampaignDeterminism, OutcomesIdenticalAcrossPoolSizes) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(3, 5);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  const auto spec = scheme_spec(SchemeKind::kFt2, model.config());

  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = 12;
  config.gen_tokens = 6;

  ThreadPool pool1(1), pool2(2), pool8(8);
  std::vector<CampaignResult> results;
  std::vector<std::vector<TrialRecord>> records;
  for (ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    config.pool = pool;
    std::vector<TrialRecord> trace;
    results.push_back(run_campaign(
        model, inputs, spec, BoundStore{}, config,
        [&](const TrialRecord& r) { trace.push_back(r); }));
    records.push_back(sorted_records(std::move(trace)));
  }

  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].trials, results[0].trials) << "pool run " << i;
    EXPECT_EQ(results[i].sdc, results[0].sdc) << "pool run " << i;
    EXPECT_EQ(results[i].masked_identical, results[0].masked_identical)
        << "pool run " << i;
    EXPECT_EQ(results[i].masked_semantic, results[0].masked_semantic)
        << "pool run " << i;
    EXPECT_EQ(results[i].not_injected, results[0].not_injected)
        << "pool run " << i;
    ASSERT_EQ(records[i].size(), records[0].size()) << "pool run " << i;
    for (std::size_t t = 0; t < records[0].size(); ++t) {
      EXPECT_EQ(records[i][t].trial, records[0][t].trial);
      EXPECT_EQ(records[i][t].input_index, records[0][t].input_index);
      EXPECT_EQ(records[i][t].outcome, records[0][t].outcome)
          << "pool run " << i << " trial " << t;
      EXPECT_EQ(records[i][t].detections, records[0][t].detections)
          << "pool run " << i << " trial " << t;
      EXPECT_EQ(records[i][t].generated_text, records[0][t].generated_text)
          << "pool run " << i << " trial " << t;
      EXPECT_TRUE(same_plan(records[i][t].plan, records[0][t].plan))
          << "pool run " << i << " trial " << t;
    }
  }
}

TEST(CampaignDeterminism, RangeHalvesConcatenateToFullRun) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 9);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  const auto spec = scheme_spec(SchemeKind::kNone, model.config());

  CampaignConfig config;
  config.fault_model = FaultModel::kSingleBit;
  config.trials_per_input = 10;
  config.gen_tokens = 6;
  const std::size_t total = inputs.size() * config.trials_per_input;
  const std::size_t mid = total / 2;

  std::vector<TrialRecord> full_trace;
  const auto full = run_campaign(
      model, inputs, spec, BoundStore{}, config,
      [&](const TrialRecord& r) { full_trace.push_back(r); });

  std::vector<TrialRecord> split_trace;
  auto lo = run_campaign_range(
      model, inputs, spec, BoundStore{}, config, 0, mid,
      [&](const TrialRecord& r) { split_trace.push_back(r); });
  const auto hi = run_campaign_range(
      model, inputs, spec, BoundStore{}, config, mid, total,
      [&](const TrialRecord& r) { split_trace.push_back(r); });
  lo.merge(hi);

  EXPECT_EQ(lo.trials, full.trials);
  EXPECT_EQ(lo.sdc, full.sdc);
  EXPECT_EQ(lo.masked_identical, full.masked_identical);
  EXPECT_EQ(lo.masked_semantic, full.masked_semantic);
  EXPECT_EQ(lo.not_injected, full.not_injected);

  const auto full_sorted = sorted_records(std::move(full_trace));
  const auto split_sorted = sorted_records(std::move(split_trace));
  ASSERT_EQ(split_sorted.size(), full_sorted.size());
  for (std::size_t t = 0; t < full_sorted.size(); ++t) {
    EXPECT_EQ(split_sorted[t].trial, full_sorted[t].trial);
    EXPECT_EQ(split_sorted[t].outcome, full_sorted[t].outcome) << "trial " << t;
    EXPECT_TRUE(same_plan(split_sorted[t].plan, full_sorted[t].plan))
        << "trial " << t;
  }
}

TEST(CampaignDeterminism, FaultFreeFractionMatchesSerialReference) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(4, 11);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  ASSERT_FALSE(inputs.empty());
  const auto spec = scheme_spec(SchemeKind::kFt2, model.config());
  const std::size_t gen_tokens = 6;

  // Serial reference: the pre-serve-engine implementation, one session per
  // input (pinned here so the batched implementation can never drift).
  std::size_t correct = 0;
  for (const auto& input : inputs) {
    ProtectionHook protection(model.config(), spec, BoundStore{});
    InferenceSession session(model);
    const HookRegistration reg = session.hooks().add(protection);
    GenerateOptions options;
    options.max_new_tokens = gen_tokens;
    options.eos_token = -1;
    const auto result = session.generate(input.prompt, options);
    const std::string text =
        Vocab::shared().decode(truncate_at_eos(result.tokens));
    if (contains_reference(text, input.sample.reference)) ++correct;
  }
  const double expected =
      static_cast<double>(correct) / static_cast<double>(inputs.size());

  const double got = fault_free_correct_fraction(model, inputs, spec,
                                                 BoundStore{}, gen_tokens);
  EXPECT_DOUBLE_EQ(got, expected);
}

}  // namespace
}  // namespace ft2
