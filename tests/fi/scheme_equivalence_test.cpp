// Regression pin for the DetectionScheme refactor: the legacy
// range-restriction schemes must stay bit-identical to the pre-refactor
// ProtectionHook. The fixtures under tests/fixtures/scheme_equiv were
// recorded with the pre-refactor build (same micro models, inputs and
// campaign configuration as below); this test re-runs the campaigns through
// the refactored driver + RangeRestrictScheme path and compares
//   * every per-trial record (outcomes, detections, clip events, text),
//   * campaign.* / protect.* counters and protect.* histogram buckets,
//   * a per-token-boundary capture_state digest of a fault-free recorded
//     generation plus the final online bounds (%.9g round-trips floats),
// across prefix-reuse off AND on (reuse is documented bit-identical).
//
// Regenerate after an intentional format/behaviour change with
//   FT2_UPDATE_FIXTURES=1 ./build/tests/ft2_tests \
//       --gtest_filter=SchemeEquivalence.*
// and review the fixture diff consciously.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ft2.hpp"
#include "fi/trace.hpp"
#include "protect/profiler.hpp"

namespace ft2 {
namespace {

constexpr const char* kFixtureDir = "tests/fixtures/scheme_equiv";

bool update_fixtures() {
  const char* v = std::getenv("FT2_UPDATE_FIXTURES");
  return v != nullptr && std::string_view(v) == "1";
}

TransformerLM micro_model(ArchFamily arch) {
  ModelConfig c;
  c.arch = arch;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(47);
  return TransformerLM(c, init_weights(c, rng));
}

std::string f9(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "missing fixture " << path
                           << " (run with FT2_UPDATE_FIXTURES=1 to record)";
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  os << text;
}

/// Counters object minus campaign.prefix.* (those legitimately differ with
/// prefix reuse on: hits/misses are throughput accounting, not behaviour).
Json filter_prefix_counters(const Json& counters) {
  Json out = Json::object();
  for (const std::string& key : counters.keys()) {
    if (key.rfind("campaign.prefix.", 0) == 0) continue;
    out[key] = counters.at(key);
  }
  return out;
}

/// The recorder's metrics digest: every counter value plus the integer
/// shape of every protect.* histogram.
Json metrics_digest(const MetricsSnapshot& snap) {
  Json doc = Json::object();
  Json counters = Json::object();
  for (const auto& c : snap.counters) {
    counters[c.name] = static_cast<double>(c.value);
  }
  Json hists = Json::object();
  for (const auto& h : snap.histograms) {
    if (std::string_view(h.name).substr(0, 8) != "protect.") continue;
    Json entry = Json::object();
    Json counts = Json::array();
    for (auto v : h.counts) counts.push_back(static_cast<double>(v));
    entry["counts"] = std::move(counts);
    entry["count"] = static_cast<double>(h.count);
    entry["nan_count"] = static_cast<double>(h.nan_count);
    hists[h.name] = std::move(entry);
  }
  doc["counters"] = std::move(counters);
  doc["protect_histograms"] = std::move(hists);
  return doc;
}

struct FreshRun {
  std::vector<TrialRecord> records;
  Json metrics;
};

FreshRun run_campaign_fresh(const TransformerLM& model,
                            const std::vector<EvalInput>& inputs,
                            const SchemeSpec& spec, const BoundStore& offline,
                            bool prefix_reuse) {
  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = 10;
  config.gen_tokens = 6;
  config.seed = 3;
  config.capture_clips = true;
  ThreadPool pool1(1);
  config.pool = &pool1;
  MetricsRegistry registry;
  config.obs.metrics = &registry;
  config.prefix_reuse = prefix_reuse;

  TraceCollector collector;
  run_campaign(model, inputs, spec, offline, config, collector.callback());

  FreshRun out;
  out.records = collector.records();
  out.metrics = metrics_digest(registry.snapshot());
  return out;
}

/// Fault-free recorded generation digest (per-boundary capture_state totals
/// + final online bounds), exactly as the pre-refactor recorder built it.
Json state_digest(const TransformerLM& model, const EvalInput& input,
                  const SchemeSpec& spec, const BoundStore& offline) {
  ProtectionHook hook(model.config(), spec, offline);
  hook.set_clip_capture(true);
  InferenceSession session(model);
  const HookRegistration reg = session.hooks().add(hook);
  GenerateOptions options;
  options.max_new_tokens = 6;
  options.eos_token = -1;
  SessionSnapshot snap;
  Json boundaries = Json::array();
  session.generate_recorded(input.prompt, options, snap, [&](std::size_t) {
    const ProtectionState st = hook.capture_state();
    ProtectionStats total;
    for (const auto& s : st.kind_stats) total.merge(s);
    Json b = Json::object();
    b["values_checked"] = static_cast<double>(total.values_checked);
    b["nan_corrected"] = static_cast<double>(total.nan_corrected);
    b["oob_corrected"] = static_cast<double>(total.oob_corrected);
    b["first_detect_pos"] = static_cast<double>(st.first_detect_pos);
    b["clips"] = static_cast<double>(st.clips.size());
    const BoundStore& online = hook.online_bounds();
    b["online_valid"] =
        static_cast<double>(online.empty() ? 0 : online.valid_count());
    boundaries.push_back(std::move(b));
  });
  Json online = Json::array();
  const BoundStore& ob = hook.online_bounds();
  if (!ob.empty()) {
    for (std::size_t block = 0; block < model.config().n_blocks; ++block) {
      for (std::size_t k = 0; k < kLayerKindCount; ++k) {
        const LayerSite site{static_cast<int>(block),
                             static_cast<LayerKind>(k)};
        const Bounds& bd = ob.at(site);
        if (!bd.valid()) continue;
        Json e = Json::object();
        e["block"] = static_cast<double>(block);
        e["kind"] = std::string(layer_kind_name(site.kind));
        e["lo"] = f9(bd.lo);
        e["hi"] = f9(bd.hi);
        online.push_back(std::move(e));
      }
    }
  }

  // Round-trip check while the hook is live: restoring the final capture
  // into a fresh hook must reinstate stats, clips, first-detect and bounds.
  const ProtectionState final_state = hook.capture_state();
  ProtectionHook restored(model.config(), spec, offline);
  restored.set_clip_capture(true);
  restored.on_generation_begin();
  restored.restore_state(final_state);
  EXPECT_EQ(restored.stats().values_checked, hook.stats().values_checked);
  EXPECT_EQ(restored.stats().nan_corrected, hook.stats().nan_corrected);
  EXPECT_EQ(restored.stats().oob_corrected, hook.stats().oob_corrected);
  EXPECT_EQ(restored.first_detect_position(), hook.first_detect_position());
  EXPECT_EQ(restored.clip_events().size(), hook.clip_events().size());
  if (!hook.online_bounds().empty()) {
    EXPECT_FALSE(restored.online_bounds().empty());
    if (!restored.online_bounds().empty()) {
      EXPECT_EQ(restored.online_bounds().valid_count(),
                hook.online_bounds().valid_count());
    }
  }

  Json doc = Json::object();
  doc["boundaries"] = std::move(boundaries);
  doc["final_online_bounds"] = std::move(online);
  return doc;
}

/// Serializes records the way the comparison needs them: trial_ms is wall
/// time and scheme was introduced after the fixtures were recorded, so both
/// are normalized away before the field-by-field comparison.
std::string records_digest(std::vector<TrialRecord> records) {
  std::string out;
  for (TrialRecord& r : records) {
    r.scheme.clear();
    r.trial_ms = 0.0;
    out += trial_record_to_json(r).dump(-1);
    out += '\n';
  }
  return out;
}

void check_scheme(const std::string& model_name, const TransformerLM& model,
                  const std::vector<EvalInput>& inputs,
                  const BoundStore& offline, SchemeKind kind) {
  SCOPED_TRACE(model_name + "/" + scheme_name(kind));
  const SchemeSpec spec = scheme_spec(kind, model.config());
  const std::string base = std::string(kFixtureDir) + "/" + model_name + "_" +
                           scheme_name(kind);

  const FreshRun off = run_campaign_fresh(model, inputs, spec, offline,
                                          /*prefix_reuse=*/false);
  const Json state = state_digest(model, inputs[0], spec, offline);

  if (update_fixtures()) {
    TraceCollector collector;
    for (TrialRecord r : off.records) {
      r.trial_ms = 0.0;  // wall time: keep fixtures deterministic
      collector.callback()(r);
    }
    std::ostringstream os;
    collector.write_jsonl(os);
    write_file(base + ".records.jsonl", os.str());
    write_file(base + ".metrics.json", off.metrics.dump(1) + "\n");
    write_file(base + ".state.json", state.dump(1) + "\n");
    return;
  }

  // Per-trial records, field by field (scheme/trial_ms normalized away —
  // the fixtures predate both fields).
  const std::string fixture_jsonl = read_file(base + ".records.jsonl");
  std::istringstream lines(fixture_jsonl);
  const std::vector<TrialRecord> expected = read_trial_records_jsonl(lines);
  ASSERT_EQ(off.records.size(), expected.size());
  EXPECT_EQ(records_digest(off.records), records_digest(expected));

  // Counters + protect.* histograms.
  const Json expected_metrics = Json::parse(read_file(base + ".metrics.json"));
  EXPECT_EQ(off.metrics.dump(1), expected_metrics.dump(1));

  // capture_state digest + final online bounds.
  const Json expected_state = Json::parse(read_file(base + ".state.json"));
  EXPECT_EQ(state.dump(1), expected_state.dump(1));

  // Prefix reuse is documented bit-identical: same records, same protect.*
  // metrics; only the campaign.prefix.* throughput counters may differ.
  const FreshRun on = run_campaign_fresh(model, inputs, spec, offline,
                                         /*prefix_reuse=*/true);
  EXPECT_EQ(records_digest(on.records), records_digest(expected));
  Json on_counters = filter_prefix_counters(on.metrics.at("counters"));
  Json expected_counters =
      filter_prefix_counters(expected_metrics.at("counters"));
  EXPECT_EQ(on_counters.dump(1), expected_counters.dump(1));
  EXPECT_EQ(on.metrics.at("protect_histograms").dump(1),
            expected_metrics.at("protect_histograms").dump(1));
}

// One sequential test, not a parameterized suite: the recorder drew opt's
// samples, opt's profiling inputs, then llama's from ONE generator, so the
// llama fixtures depend on the generator state opt left behind.
TEST(SchemeEquivalence, LegacySchemesMatchPreRefactorFixtures) {
  const auto gen = make_generator(DatasetKind::kSynthQA);
  for (const auto& [model_name, arch] :
       {std::pair{std::string("opt"), ArchFamily::kOpt},
        std::pair{std::string("llama"), ArchFamily::kLlama}}) {
    const TransformerLM model = micro_model(arch);
    const auto samples = gen->generate_many(2, 5);
    const auto inputs = prepare_eval_inputs(model, samples, 6, false);
    ASSERT_FALSE(inputs.empty());

    OfflineProfileOptions prof;
    prof.n_inputs = 4;
    prof.seed = 11;
    prof.max_new_tokens = 6;
    const BoundStore offline = profile_offline_bounds(model, *gen, prof);

    for (SchemeKind kind :
         {SchemeKind::kNone, SchemeKind::kRanger, SchemeKind::kMaxiMals,
          SchemeKind::kGlobalClipper, SchemeKind::kFt2,
          SchemeKind::kFt2Offline}) {
      check_scheme(model_name, model, inputs, offline, kind);
    }
  }
}

}  // namespace
}  // namespace ft2
