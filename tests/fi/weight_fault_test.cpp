#include "fi/weight_fault.hpp"

#include <gtest/gtest.h>

namespace ft2 {
namespace {

ModelConfig micro_config() {
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  return c;
}

TransformerLM micro_model() {
  const ModelConfig c = micro_config();
  Xoshiro256 rng(11);
  return TransformerLM(c, init_weights(c, rng));
}

TEST(WeightFault, SpaceCountsAllWeightElements) {
  const ModelConfig c = micro_config();
  const WeightFaultSpace space(c);
  // Per block: Q,K,V,OUT: 4 * 16*16; GATE,UP: 2 * 24*16; DOWN: 16*24.
  const std::size_t per_block = 4 * 16 * 16 + 2 * 24 * 16 + 16 * 24;
  EXPECT_EQ(space.total_elements(), 2 * per_block);
}

TEST(WeightFault, SampleStaysInRange) {
  const ModelConfig c = micro_config();
  const WeightFaultSpace space(c);
  for (std::size_t t = 0; t < 500; ++t) {
    PhiloxStream rng(3, t);
    const auto plan =
        space.sample(FaultModel::kSingleBit, ValueType::kF16, rng);
    EXPECT_TRUE(is_linear_layer(plan.site.kind));
    EXPECT_LT(static_cast<std::size_t>(plan.site.block), c.n_blocks);
    EXPECT_LT(plan.row, c.layer_output_dim(plan.site.kind));
    const std::size_t cols = (plan.site.kind == LayerKind::kDownProj ||
                              plan.site.kind == LayerKind::kFc2)
                                 ? c.d_ff
                                 : c.d_model;
    EXPECT_LT(plan.col, cols);
  }
}

TEST(WeightFault, ScopedFaultAppliesAndRestores) {
  TransformerLM model = micro_model();
  WeightFaultPlan plan;
  plan.site = {0, LayerKind::kVProj};
  plan.row = 3;
  plan.col = 5;
  plan.flips.count = 1;
  plan.flips.bits[0] = 15;  // sign flip

  LinearWeights& lw = linear_at(model.weights(), model.config(), plan.site);
  const float before = lw.w.at(3, 5);
  {
    ScopedWeightFault fault(model, plan);
    EXPECT_EQ(lw.w.at(3, 5), fault.faulty_value());
    EXPECT_EQ(fault.original_value(), before);
    EXPECT_NE(lw.w.at(3, 5), before);
  }
  EXPECT_EQ(lw.w.at(3, 5), before);
}

TEST(WeightFault, FaultChangesGeneration) {
  TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(1, 2);
  const auto inputs = prepare_eval_inputs(model, samples, 8, false);

  GenerateOptions opts;
  opts.max_new_tokens = 8;
  opts.eos_token = -1;
  InferenceSession session(model);
  const auto clean = session.generate(inputs[0].prompt, opts);

  WeightFaultPlan plan;
  plan.site = {0, LayerKind::kOutProj};
  plan.row = 0;
  plan.col = 0;
  plan.flips.count = 1;
  plan.flips.bits[0] = f16::kExponentHigh;
  {
    ScopedWeightFault fault(model, plan);
    InferenceSession faulty_session(model);
    const auto faulty = faulty_session.generate(inputs[0].prompt, opts);
    // An exponent flip on a weight makes a whole row of products extreme;
    // the generation virtually always changes.
    EXPECT_NE(clean.tokens, faulty.tokens);
  }
  InferenceSession restored(model);
  EXPECT_EQ(restored.generate(inputs[0].prompt, opts).tokens, clean.tokens);
}

TEST(WeightFault, CampaignRunsAndIsReproducible) {
  TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 9);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);

  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = 15;
  config.gen_tokens = 6;

  const auto spec = scheme_spec(SchemeKind::kFt2, model.config());
  const auto a =
      run_weight_fault_campaign(model, inputs, spec, BoundStore{}, config);
  const auto b =
      run_weight_fault_campaign(model, inputs, spec, BoundStore{}, config);
  EXPECT_EQ(a.trials, 30u);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.masked_identical, b.masked_identical);
}

TEST(MultiFault, MoreFaultsNeverInjectLess) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 10);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);

  CampaignConfig one;
  one.fault_model = FaultModel::kExponentBit;
  one.trials_per_input = 25;
  one.gen_tokens = 6;
  CampaignConfig three = one;
  three.faults_per_trial = 3;

  const auto r1 =
      run_campaign(model, inputs, SchemeKind::kNone, BoundStore{}, one);
  const auto r3 =
      run_campaign(model, inputs, SchemeKind::kNone, BoundStore{}, three);
  EXPECT_EQ(r1.trials, r3.trials);
  // With a random-weight model the exact rates are noisy; assert the
  // mechanical property: all trials still classified.
  EXPECT_EQ(r3.masked_identical + r3.masked_semantic + r3.sdc +
                r3.not_injected,
            r3.trials);
}

}  // namespace
}  // namespace ft2
