// Campaign runner behaviour on a micro trained-enough model. These tests
// use a random-weight model where training is unnecessary (classification
// and reproducibility are weight-agnostic).
#include "fi/campaign.hpp"

#include <gtest/gtest.h>

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(21);
  return TransformerLM(c, init_weights(c, rng));
}

std::vector<Sample> qa_samples(std::size_t n) {
  return make_generator(DatasetKind::kSynthQA)->generate_many(n, 99);
}

TEST(Campaign, TruncateAtEos) {
  EXPECT_EQ(truncate_at_eos({5, 6, Vocab::kEos, 7}), (std::vector<int>{5, 6}));
  EXPECT_EQ(truncate_at_eos({Vocab::kEos}), (std::vector<int>{}));
  EXPECT_EQ(truncate_at_eos({7, 8}), (std::vector<int>{7, 8}));
  // Edges: empty generation, <eos> leading a non-empty tail.
  EXPECT_EQ(truncate_at_eos({}), (std::vector<int>{}));
  EXPECT_EQ(truncate_at_eos({Vocab::kEos, 5, 6}), (std::vector<int>{}));
}

TEST(Campaign, ClassifyOutcome) {
  const Vocab& v = Vocab::shared();
  EvalInput input;
  input.sample.reference = "paris";
  input.reference_tokens = v.encode("bob lives in paris");
  input.reference_tokens.push_back(Vocab::kEos);

  // Identical (incl. post-eos garbage that gets truncated).
  auto same = input.reference_tokens;
  same.push_back(v.id("cairo"));
  EXPECT_EQ(classify_outcome(same, input), Outcome::kMaskedIdentical);

  // Different text but contains the reference answer.
  EXPECT_EQ(classify_outcome(v.encode("in paris he lives"), input),
            Outcome::kMaskedSemantic);

  // Wrong answer.
  EXPECT_EQ(classify_outcome(v.encode("bob lives in cairo"), input),
            Outcome::kSdc);

  // Empty output.
  EXPECT_EQ(classify_outcome({}, input), Outcome::kSdc);

  // Generation shorter than the reference: a bare prefix without the
  // answer is SDC; a short output that still contains the answer is
  // masked-semantic.
  EXPECT_EQ(classify_outcome(v.encode("bob lives"), input), Outcome::kSdc);
  EXPECT_EQ(classify_outcome(v.encode("paris"), input),
            Outcome::kMaskedSemantic);

  // Reference that is all <eos>: only the identical (empty-after-
  // truncation) generation is masked-identical.
  EvalInput eos_input;
  eos_input.sample.reference = "paris";
  eos_input.reference_tokens = {Vocab::kEos};
  EXPECT_EQ(classify_outcome({Vocab::kEos, 9}, eos_input),
            Outcome::kMaskedIdentical);
  EXPECT_EQ(classify_outcome(v.encode("cairo"), eos_input), Outcome::kSdc);
}

TEST(Campaign, NotInjectedWhenFaultSiteBeyondDecodeHorizon) {
  // With max_seq shorter than prompt_len + gen_tokens - 1 some planned
  // decode positions are never executed: the injector cannot fire and the
  // trial classifies as kNotInjected (regardless of prefix reuse, which
  // clamps such forks to the last executed boundary).
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 16;
  Xoshiro256 rng(21);
  const TransformerLM model(c, init_weights(c, rng));

  auto samples = qa_samples(1);
  while (samples[0].prompt_tokens.size() < 14) {
    samples[0].prompt_tokens.push_back(samples[0].prompt_tokens.front());
  }
  const auto inputs = prepare_eval_inputs(model, samples, 8, false);
  CampaignConfig config;
  config.trials_per_input = 30;
  config.gen_tokens = 8;
  config.fault_model = FaultModel::kExponentBit;

  std::vector<TrialRecord> trace;
  const auto result =
      run_campaign(model, inputs, SchemeKind::kNone, BoundStore{}, config,
                   [&](const TrialRecord& r) { trace.push_back(r); });
  EXPECT_GT(result.not_injected, 0u);
  std::size_t seen = 0;
  for (const TrialRecord& r : trace) {
    if (r.outcome != Outcome::kNotInjected) continue;
    ++seen;
    // Every not-injected plan points past the last executed forward.
    EXPECT_GE(r.plan.position, c.max_seq);
  }
  EXPECT_EQ(seen, result.not_injected);
}

TEST(Campaign, PrepareEvalInputsFiltersIncorrect) {
  const TransformerLM model = micro_model();  // random weights
  const auto samples = qa_samples(5);
  const auto all = prepare_eval_inputs(model, samples, 8, false);
  ASSERT_EQ(all.size(), 5u);
  std::size_t correct = 0;
  for (const auto& input : all) {
    if (input.fault_free_correct) ++correct;
    EXPECT_EQ(input.prompt[0], Vocab::kBos);
    EXPECT_EQ(input.reference_tokens.size(), 8u);
  }
  // Filtering keeps exactly the fault-free-correct subset.
  const auto kept = prepare_eval_inputs(model, samples, 8, true);
  EXPECT_EQ(kept.size(), correct);
  for (const auto& input : kept) EXPECT_TRUE(input.fault_free_correct);
}

TEST(Campaign, RunIsReproducibleAndCountsAddUp) {
  const TransformerLM model = micro_model();
  const auto inputs = prepare_eval_inputs(model, qa_samples(3), 8, false);
  CampaignConfig config;
  config.trials_per_input = 20;
  config.gen_tokens = 8;
  config.seed = 5;
  config.fault_model = FaultModel::kExponentBit;

  const auto a = run_campaign(model, inputs, SchemeKind::kNone, BoundStore{},
                              config);
  const auto b = run_campaign(model, inputs, SchemeKind::kNone, BoundStore{},
                              config);
  EXPECT_EQ(a.trials, 60u);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.masked_identical, b.masked_identical);
  EXPECT_EQ(a.masked_semantic, b.masked_semantic);
  EXPECT_EQ(a.trials,
            a.masked_identical + a.masked_semantic + a.sdc + a.not_injected);
  EXPECT_EQ(a.not_injected, 0u);  // fixed-length runs always reach the site
}

TEST(Campaign, DifferentSeedsGiveDifferentFaults) {
  const TransformerLM model = micro_model();
  const auto inputs = prepare_eval_inputs(model, qa_samples(2), 8, false);
  CampaignConfig c1, c2;
  c1.trials_per_input = c2.trials_per_input = 40;
  c1.gen_tokens = c2.gen_tokens = 8;
  c1.fault_model = c2.fault_model = FaultModel::kExponentBit;
  c1.seed = 1;
  c2.seed = 2;
  const auto a = run_campaign(model, inputs, SchemeKind::kNone, BoundStore{},
                              c1);
  const auto b = run_campaign(model, inputs, SchemeKind::kNone, BoundStore{},
                              c2);
  // Outcome distributions rarely coincide exactly with 80 random faults.
  EXPECT_TRUE(a.masked_identical != b.masked_identical || a.sdc != b.sdc ||
              a.masked_semantic != b.masked_semantic);
}

TEST(Campaign, ResultMergeAndCi) {
  CampaignResult a, b;
  a.trials = 100;
  a.sdc = 3;
  a.masked_identical = 97;
  b.trials = 50;
  b.sdc = 1;
  b.masked_identical = 49;
  a.merge(b);
  EXPECT_EQ(a.trials, 150u);
  EXPECT_EQ(a.sdc, 4u);
  EXPECT_NEAR(a.sdc_rate(), 4.0 / 150.0, 1e-12);
  const auto ci = a.sdc_ci();
  EXPECT_GT(ci.hi, ci.lo);
  EXPECT_GT(ci.margin, 0.0);
}

TEST(Campaign, EmptyInputsThrow) {
  const TransformerLM model = micro_model();
  CampaignConfig config;
  EXPECT_THROW(run_campaign(model, {}, SchemeKind::kNone, BoundStore{},
                            config),
               Error);
}

TEST(Campaign, MaskedIdenticalWhenFaultIsHarmless) {
  // With protection that zeroes everything out-of-tiny-bounds the model
  // output may change; but a sign-bit flip on a zero value is a no-op, so
  // at least *some* trials must be masked-identical under kNone.
  const TransformerLM model = micro_model();
  const auto inputs = prepare_eval_inputs(model, qa_samples(2), 6, false);
  CampaignConfig config;
  config.trials_per_input = 60;
  config.gen_tokens = 6;
  config.fault_model = FaultModel::kSingleBit;
  const auto result = run_campaign(model, inputs, SchemeKind::kNone,
                                   BoundStore{}, config);
  EXPECT_GT(result.masked_identical, 0u);
}

}  // namespace
}  // namespace ft2
