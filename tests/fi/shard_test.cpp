// Shard lifecycle: partition properties, manifest round-trip and identity
// checks, and the resume contract — a shard killed mid-range (torn JSONL
// tail included) resumes to records bit-identical with an uninterrupted
// run, while a manifest mismatch is refused outright.
#include "fi/shard.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/check.hpp"
#include "nn/weights.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(21);
  return TransformerLM(c, init_weights(c, rng));
}

struct ShardFixture {
  TransformerLM model = micro_model();
  std::vector<EvalInput> inputs;
  SchemeRef scheme = SchemeRef::parse("ft2");
  BoundStore bounds;
  CampaignConfig config;

  ShardFixture() {
    const auto samples =
        make_generator(DatasetKind::kSynthQA)->generate_many(2, 99);
    inputs = prepare_eval_inputs(model, samples, 6, false);
    config.trials_per_input = 15;
    config.gen_tokens = 6;
    config.fault_model = FaultModel::kDoubleBit;
  }

  std::size_t total_trials() const {
    return inputs.size() * config.trials_per_input;
  }

  ShardManifest manifest(std::size_t index, std::size_t count) const {
    const auto ranges = partition_trials(total_trials(), count);
    ShardManifest m;
    m.model = "micro";
    m.model_digest = weights_digest_hex(model.weights());
    m.dataset = "synthqa";
    m.scheme = scheme.display();
    m.fault_model = fault_model_name(config.fault_model);
    m.vtype = value_type_name(config.vtype);
    m.campaign_seed = config.seed;
    m.trials_per_input = config.trials_per_input;
    m.gen_tokens = config.gen_tokens;
    m.faults_per_trial = config.faults_per_trial;
    m.n_inputs = inputs.size();
    m.total_trials = total_trials();
    m.shard_index = index;
    m.shard_count = count;
    m.first_trial = ranges[index].first;
    m.last_trial = ranges[index].last;
    return m;
  }

  ShardRunResult run_shard(const ShardManifest& m, const std::string& path,
                           bool resume = true) const {
    return run_campaign_shard(model, inputs, scheme, bounds, config, m, path,
                              resume);
  }
};

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Record serialization with trial_ms zeroed: timing is observational and
/// excluded from determinism comparisons.
std::string timeless_dump(std::vector<TrialRecord> records) {
  std::string out;
  for (TrialRecord& r : records) {
    r.trial_ms = 0.0;
    out += trial_record_to_json(r).dump(-1);
    out += '\n';
  }
  return out;
}

TEST(PartitionTrials, ContiguousCoverWithBalancedSizes) {
  for (std::size_t total : {0u, 1u, 7u, 30u, 1001u}) {
    for (std::size_t shards : {1u, 2u, 3u, 7u, 40u}) {
      const auto ranges = partition_trials(total, shards);
      ASSERT_EQ(ranges.size(), shards);
      EXPECT_EQ(ranges.front().first, 0u);
      EXPECT_EQ(ranges.back().last, total);
      std::size_t min_size = SIZE_MAX, max_size = 0;
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (i > 0) EXPECT_EQ(ranges[i].first, ranges[i - 1].last);
        min_size = std::min(min_size, ranges[i].size());
        max_size = std::max(max_size, ranges[i].size());
      }
      EXPECT_LE(max_size - min_size, 1u) << total << "/" << shards;
    }
  }
  EXPECT_THROW(partition_trials(10, 0), Error);
}

TEST(ShardManifest, JsonRoundTripIsExact) {
  ShardManifest m;
  m.model = "opt-xs";
  m.model_digest = "00ffee0123456789";
  m.dataset = "synthqa";
  m.scheme = "ft2";
  m.fault_model = "EXP";
  m.vtype = "f16";
  m.campaign_seed = 0x8000000000000005ULL;  // needs all 64 bits
  m.trials_per_input = 12500;
  m.gen_tokens = 16;
  m.faults_per_trial = 2;
  m.n_inputs = 40;
  m.total_trials = 500000;
  m.shard_index = 3;
  m.shard_count = 4;
  m.first_trial = 375000;
  m.last_trial = 500000;
  const ShardManifest back = ShardManifest::from_json(m.to_json());
  EXPECT_EQ(m.to_json().dump(-1), back.to_json().dump(-1));
  EXPECT_EQ(back.campaign_seed, m.campaign_seed);
  EXPECT_NO_THROW(m.check_compatible(back, /*same_shard=*/true));
}

TEST(ShardManifest, MismatchNamesTheDivergentFields) {
  ShardManifest a;
  a.model = "opt-xs";
  a.campaign_seed = 42;
  ShardManifest b = a;
  b.campaign_seed = 43;
  b.model_digest = "deadbeef";
  try {
    a.check_compatible(b, /*same_shard=*/false);
    FAIL() << "mismatch not detected";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("campaign_seed"), std::string::npos);
    EXPECT_NE(what.find("model_digest"), std::string::npos);
    EXPECT_EQ(what.find("dataset"), std::string::npos);
  }
  // Shard geometry only matters when resuming the same shard.
  ShardManifest c = a;
  c.shard_index = 5;
  c.first_trial = 100;
  EXPECT_NO_THROW(a.check_compatible(c, /*same_shard=*/false));
  EXPECT_THROW(a.check_compatible(c, /*same_shard=*/true), Error);
}

TEST(ShardScan, MissingFileIsAFreshShard) {
  const ShardScan scan = scan_shard_log(temp_path("ft2_no_such_shard.jsonl"));
  EXPECT_FALSE(scan.has_manifest);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.torn_tail);
}

TEST(ShardResume, TruncatedShardResumesBitIdentically) {
  const ShardFixture fix;
  const ShardManifest manifest = fix.manifest(0, 1);
  const std::string whole_path = temp_path("ft2_shard_whole.jsonl");

  const ShardRunResult whole = fix.run_shard(manifest, whole_path,
                                             /*resume=*/false);
  EXPECT_EQ(whole.executed, fix.total_trials());
  EXPECT_EQ(whole.resumed, 0u);
  const ShardScan whole_scan = scan_shard_log(whole_path);
  ASSERT_EQ(whole_scan.records.size(), fix.total_trials());
  const std::string expect = timeless_dump(whole_scan.records);

  std::string bytes;
  {
    std::ifstream is(whole_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  // Kill points: mid-record (torn tail), exactly on a record boundary, and
  // deep enough to leave only a handful of trials.
  const std::size_t boundary = bytes.rfind('\n', bytes.size() - 2) + 1;
  for (const std::size_t cut :
       {bytes.size() - 19, boundary, bytes.size() / 2, bytes.size() / 4}) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    const std::string path = temp_path("ft2_shard_resume.jsonl");
    {
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      os.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    const ShardRunResult resumed = fix.run_shard(manifest, path);
    EXPECT_EQ(resumed.resumed + resumed.executed, fix.total_trials());
    EXPECT_GT(resumed.executed, 0u);
    const ShardScan rescan = scan_shard_log(path);
    EXPECT_FALSE(rescan.torn_tail);
    EXPECT_EQ(rescan.resume_from, manifest.last_trial);
    EXPECT_EQ(timeless_dump(rescan.records), expect);
    std::remove(path.c_str());
  }

  // Resuming a complete shard is a no-op that re-runs nothing.
  const ShardRunResult again = fix.run_shard(manifest, whole_path);
  EXPECT_EQ(again.executed, 0u);
  EXPECT_EQ(again.resumed, fix.total_trials());
  std::remove(whole_path.c_str());
}

TEST(ShardResume, TornTailIsDetectedTruncatedAndReRun) {
  const ShardFixture fix;
  const ShardManifest manifest = fix.manifest(0, 1);
  const std::string path = temp_path("ft2_shard_torn.jsonl");
  fix.run_shard(manifest, path, /*resume=*/false);

  // Tear the tail so the fragment still parses as valid JSON for a prefix
  // of fields — the exact failure the strict reader exists to catch.
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  const std::size_t last_line = bytes.rfind('\n', bytes.size() - 2) + 1;
  std::string torn = bytes.substr(0, last_line);
  torn += "{\"trial\": 99999, \"input\": 0}";  // valid JSON, no newline
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << torn;
  }
  const ShardScan scan = scan_shard_log(path);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, last_line);

  const ShardRunResult resumed = fix.run_shard(manifest, path);
  EXPECT_TRUE(resumed.torn_tail_recovered);
  EXPECT_EQ(resumed.executed, 1u);
  EXPECT_EQ(resumed.resumed, fix.total_trials() - 1);
  const ShardScan rescan = scan_shard_log(path);
  EXPECT_FALSE(rescan.torn_tail);
  EXPECT_EQ(rescan.records.size(), fix.total_trials());
  std::remove(path.c_str());
}

TEST(ShardResume, ManifestMismatchIsRefused) {
  const ShardFixture fix;
  const ShardManifest manifest = fix.manifest(0, 1);
  const std::string path = temp_path("ft2_shard_mismatch.jsonl");
  fix.run_shard(manifest, path, /*resume=*/false);

  ShardManifest wrong_seed = manifest;
  wrong_seed.campaign_seed = 4242;
  EXPECT_THROW(fix.run_shard(wrong_seed, path), Error);

  ShardManifest wrong_scheme = manifest;
  wrong_scheme.scheme = "none";
  EXPECT_THROW(fix.run_shard(wrong_scheme, path), Error);

  ShardManifest wrong_digest = manifest;
  wrong_digest.model_digest = "0123456789abcdef";
  EXPECT_THROW(fix.run_shard(wrong_digest, path), Error);

  // The log is untouched by the refused resumes.
  const ShardScan scan = scan_shard_log(path);
  EXPECT_EQ(scan.records.size(), fix.total_trials());
  std::remove(path.c_str());
}

TEST(ShardMerge, DetectsGapsAndDuplicates) {
  const ShardFixture fix;
  const std::string a_path = temp_path("ft2_shard_m0.jsonl");
  const std::string b_path = temp_path("ft2_shard_m1.jsonl");
  const std::string b2_path = temp_path("ft2_shard_m1_dup.jsonl");
  fix.run_shard(fix.manifest(0, 3), a_path, false);
  fix.run_shard(fix.manifest(1, 3), b_path, false);

  // Shard 2 never ran: its range is a gap.
  const ShardMerge gapped = merge_shard_logs({a_path, b_path});
  EXPECT_FALSE(gapped.complete());
  ASSERT_EQ(gapped.gaps.size(), 1u);
  EXPECT_EQ(gapped.gaps[0].first, fix.manifest(2, 3).first_trial);
  EXPECT_EQ(gapped.gaps[0].last, fix.total_trials());
  EXPECT_EQ(gapped.duplicate_trials, 0u);

  // The same shard twice: every one of its trials is a duplicate.
  std::filesystem::copy_file(b_path, b2_path,
                             std::filesystem::copy_options::overwrite_existing);
  const ShardMerge duped = merge_shard_logs({a_path, b_path, b2_path});
  EXPECT_EQ(duped.duplicate_trials, fix.manifest(1, 3).last_trial -
                                        fix.manifest(1, 3).first_trial);
  EXPECT_FALSE(duped.complete());

  // Identity mismatch refuses to merge at all.
  {
    ShardFixture other;
    other.config.seed = 777;
    other.run_shard(other.manifest(2, 3), temp_path("ft2_shard_m2.jsonl"),
                    false);
  }
  EXPECT_THROW(
      merge_shard_logs({a_path, b_path, temp_path("ft2_shard_m2.jsonl")}),
      Error);

  for (const auto& p : {a_path, b_path, b2_path, temp_path("ft2_shard_m2.jsonl")}) {
    std::remove(p.c_str());
  }
}

}  // namespace
}  // namespace ft2
