// Live shard telemetry: frame wire-format codec (length prefix, partial
// feeds, malformed payloads), ShardProgressBoard merging/progress/ETA,
// and the worker end — run_campaign_shard writing decodable frames to a
// real pipe while producing records bit-identical to a telemetry-free run.
#include "fi/shard.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "nn/weights.hpp"
#include "obs/metrics.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(21);
  return TransformerLM(c, init_weights(c, rng));
}

ShardFrame sample_frame(std::size_t shard, std::size_t done) {
  ShardFrame f;
  f.shard = shard;
  f.shards = 3;
  f.first = shard * 10;
  f.last = shard * 10 + 10;
  f.done = done;
  f.outcomes["masked_identical"] = done;
  return f;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string timeless_dump(std::vector<TrialRecord> records) {
  std::string out;
  for (TrialRecord& r : records) {
    r.trial_ms = 0.0;
    out += trial_record_to_json(r).dump(-1);
    out += '\n';
  }
  return out;
}

TEST(ShardFrame, JsonRoundTrip) {
  ShardFrame f;
  f.shard = 2;
  f.shards = 3;
  f.first = 20;
  f.last = 30;
  f.done = 7;
  f.resumed = 4;
  f.final_frame = true;
  f.outcomes["sdc"] = 1;
  f.outcomes["masked_identical"] = 6;
  MetricsRegistry reg;
  reg.counter("campaign.trials").inc(7);
  f.metrics = reg.snapshot();

  const Json doc = f.to_json();
  EXPECT_NE(doc.find("ft2_shard_frame"), nullptr);
  const ShardFrame back = ShardFrame::from_json(doc);
  EXPECT_EQ(back.shard, 2u);
  EXPECT_EQ(back.shards, 3u);
  EXPECT_EQ(back.first, 20u);
  EXPECT_EQ(back.last, 30u);
  EXPECT_EQ(back.done, 7u);
  EXPECT_EQ(back.resumed, 4u);
  EXPECT_TRUE(back.final_frame);
  EXPECT_EQ(back.total(), 10u);
  ASSERT_EQ(back.outcomes.size(), 2u);
  EXPECT_EQ(back.outcomes.at("sdc"), 1u);
  EXPECT_EQ(back.outcomes.at("masked_identical"), 6u);
  EXPECT_EQ(back.metrics.counter_value("campaign.trials"), 7u);
}

TEST(ShardFrameDecoder, DecodesWholeAndBatchedFrames) {
  const std::string a = encode_shard_frame(sample_frame(0, 1));
  const std::string b = encode_shard_frame(sample_frame(1, 2));

  ShardFrameDecoder decoder;
  decoder.feed(a.data(), a.size());
  std::vector<ShardFrame> frames = decoder.take_frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].shard, 0u);

  // Two frames arriving in one read decode in order.
  const std::string both = a + b;
  decoder.feed(both.data(), both.size());
  frames = decoder.take_frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].shard, 0u);
  EXPECT_EQ(frames[1].shard, 1u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(ShardFrameDecoder, ReassemblesAcrossArbitraryReadBoundaries) {
  const std::string wire = encode_shard_frame(sample_frame(2, 9));
  // Feed one byte at a time: nothing decodes until the final byte.
  ShardFrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(wire.data() + i, 1);
    EXPECT_TRUE(decoder.take_frames().empty());
  }
  decoder.feed(wire.data() + wire.size() - 1, 1);
  const std::vector<ShardFrame> frames = decoder.take_frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].shard, 2u);
  EXPECT_EQ(frames[0].done, 9u);
}

TEST(ShardFrameDecoder, MalformedPayloadThrows) {
  // A length prefix followed by bytes that are not a frame JSON.
  const std::string payload = "{\"not\": \"a frame\"}";
  std::string wire;
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  wire.push_back(static_cast<char>(n & 0xff));
  wire.push_back(static_cast<char>((n >> 8) & 0xff));
  wire.push_back(static_cast<char>((n >> 16) & 0xff));
  wire.push_back(static_cast<char>((n >> 24) & 0xff));
  wire += payload;
  ShardFrameDecoder decoder;
  EXPECT_THROW(decoder.feed(wire.data(), wire.size()), Error);
}

TEST(ShardProgressBoard, AggregatesPerShardProgress) {
  ShardProgressBoard board(3, 30);
  ShardFrame f0 = sample_frame(0, 4);
  ShardFrame f1 = sample_frame(1, 6);
  f1.outcomes["sdc"] = 1;
  board.update(f0);
  board.update(f1);

  const ShardProgressBoard::Progress p = board.progress();
  EXPECT_EQ(p.done, 10u);
  EXPECT_EQ(p.total, 30u);
  EXPECT_EQ(p.shards_reporting, 2u);
  EXPECT_EQ(p.shards_final, 0u);
  ASSERT_EQ(p.per_shard_done.size(), 3u);
  EXPECT_EQ(p.per_shard_done[0], 4u);
  EXPECT_EQ(p.per_shard_done[1], 6u);
  EXPECT_EQ(p.per_shard_done[2], 0u);
  EXPECT_EQ(p.outcomes.at("masked_identical"), 10u);
  EXPECT_EQ(p.outcomes.at("sdc"), 1u);

  // A newer frame for the same shard replaces (not adds to) its entry.
  f0.done = 8;
  f0.outcomes["masked_identical"] = 8;
  f0.final_frame = true;
  board.update(f0);
  const ShardProgressBoard::Progress p2 = board.progress();
  EXPECT_EQ(p2.done, 14u);
  EXPECT_EQ(p2.shards_final, 1u);
}

TEST(ShardProgressBoard, RateExcludesResumedWork) {
  // The first frame carries work that predates this run (resumed trials);
  // the rate baseline must exclude it or ETA is wildly optimistic.
  ShardProgressBoard board(1, 100);
  ShardFrame first = sample_frame(0, 50);
  first.resumed = 50;
  board.update(first);
  const ShardProgressBoard::Progress p = board.progress();
  // No fresh work yet: no usable rate, ETA unknown (-1).
  EXPECT_DOUBLE_EQ(p.trials_per_s, 0.0);
  EXPECT_DOUBLE_EQ(p.eta_s, -1.0);
}

TEST(ShardProgressBoard, ProgressLineMentionsShardsAndTrials) {
  ShardProgressBoard board(2, 20);
  board.update(sample_frame(0, 5));
  const std::string line = board.progress_line();
  EXPECT_NE(line.find("shards 0/2 done"), std::string::npos) << line;
  EXPECT_NE(line.find("trials 5/20"), std::string::npos) << line;
  EXPECT_NE(line.find("per-shard"), std::string::npos) << line;
}

TEST(ShardProgressBoard, TelemetrySnapshotCarriesProgressGauges) {
  ShardProgressBoard board(2, 20);
  ShardFrame f = sample_frame(0, 5);
  MetricsRegistry reg;
  reg.counter("campaign.trials").inc(5);
  f.metrics = reg.snapshot();
  board.update(f);

  const MetricsSnapshot merged = board.telemetry_snapshot();
  // Worker metrics merge through; synthetic progress gauges appear.
  EXPECT_EQ(merged.counter_value("campaign.trials"), 5u);
  const MetricsSnapshot::GaugeValue* done =
      merged.find_gauge("campaign.progress.done");
  ASSERT_NE(done, nullptr);
  EXPECT_DOUBLE_EQ(done->value, 5.0);
  const MetricsSnapshot::GaugeValue* total =
      merged.find_gauge("campaign.progress.total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->value, 20.0);
  EXPECT_NE(merged.find_gauge("campaign.shard.progress.0"), nullptr);

  const Json doc = board.telemetry_json();
  EXPECT_DOUBLE_EQ(doc.at("progress").at("done").as_double(), 5.0);
  EXPECT_EQ(doc.at("progress").at("per_shard").at(0).at("shard")
                .as_double(),
            0.0);
}

TEST(ShardTelemetry, WorkerEmitsDecodableFramesAndStaysBitIdentical) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 99);
  const std::vector<EvalInput> inputs =
      prepare_eval_inputs(model, samples, 6, false);
  const SchemeRef scheme = SchemeRef::parse("ft2");
  const BoundStore bounds;
  CampaignConfig config;
  config.trials_per_input = 6;
  config.gen_tokens = 6;
  config.fault_model = FaultModel::kDoubleBit;
  // A private registry keeps frames small (the emitter snapshots it per
  // frame) and independent of other tests touching the global registry.
  MetricsRegistry frame_metrics;
  config.obs.metrics = &frame_metrics;
  const std::size_t total = inputs.size() * config.trials_per_input;

  ShardManifest manifest;
  manifest.model = "micro";
  manifest.model_digest = weights_digest_hex(model.weights());
  manifest.dataset = "synthqa";
  manifest.scheme = scheme.display();
  manifest.fault_model = fault_model_name(config.fault_model);
  manifest.vtype = value_type_name(config.vtype);
  manifest.campaign_seed = config.seed;
  manifest.trials_per_input = config.trials_per_input;
  manifest.gen_tokens = config.gen_tokens;
  manifest.faults_per_trial = config.faults_per_trial;
  manifest.n_inputs = inputs.size();
  manifest.total_trials = total;
  manifest.shard_index = 0;
  manifest.shard_count = 1;
  manifest.first_trial = 0;
  manifest.last_trial = total;

  // Baseline: no telemetry.
  const std::string plain_log = temp_path("ft2_teltest_plain.jsonl");
  std::remove(plain_log.c_str());
  const ShardRunResult plain = run_campaign_shard(
      model, inputs, scheme, bounds, config, manifest, plain_log, false);

  // Telemetry run: frames flow into a real pipe.
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ShardTelemetryConfig telemetry;
  telemetry.fd = fds[1];
  telemetry.interval_ms = 0;  // emit on every flush
  ASSERT_TRUE(telemetry.enabled());
  const std::string tel_log = temp_path("ft2_teltest_tel.jsonl");
  std::remove(tel_log.c_str());
  const ShardRunResult with_telemetry =
      run_campaign_shard(model, inputs, scheme, bounds, config, manifest,
                         tel_log, false, telemetry);
  close(fds[1]);

  // Outcomes are bit-identical with telemetry on (frames are advisory).
  const std::vector<TrialRecord> plain_records =
      scan_shard_log(plain_log).records;
  const std::vector<TrialRecord> tel_records =
      scan_shard_log(tel_log).records;
  EXPECT_EQ(plain.executed, with_telemetry.executed);
  EXPECT_EQ(timeless_dump(plain_records), timeless_dump(tel_records));

  // Drain the pipe and decode every frame.
  ShardFrameDecoder decoder;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  const std::vector<ShardFrame> frames = decoder.take_frames();
  ASSERT_GE(frames.size(), 2u);  // at least the initial + final frame
  EXPECT_EQ(decoder.buffered_bytes(), 0u);  // no torn trailing frame

  // First frame announces the range before any fresh work.
  EXPECT_EQ(frames.front().shard, 0u);
  EXPECT_EQ(frames.front().first, 0u);
  EXPECT_EQ(frames.front().last, total);

  // Final frame: marked, complete, and outcome tallies match the records.
  const ShardFrame& last = frames.back();
  EXPECT_TRUE(last.final_frame);
  EXPECT_EQ(last.done, total);
  std::map<std::string, std::uint64_t> expected;
  for (const TrialRecord& r : tel_records) {
    ++expected[outcome_name(r.outcome)];
  }
  EXPECT_EQ(last.outcomes, expected);

  // done never decreases across frames.
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_GE(frames[i].done, frames[i - 1].done);
  }

  // A board fed the frames ends at 100% with the same outcome mix.
  ShardProgressBoard board(1, total);
  for (const ShardFrame& f : frames) board.update(f);
  const ShardProgressBoard::Progress p = board.progress();
  EXPECT_EQ(p.done, total);
  EXPECT_EQ(p.shards_final, 1u);
  EXPECT_EQ(p.outcomes, expected);

  std::remove(plain_log.c_str());
  std::remove(tel_log.c_str());
}

TEST(ShardTelemetry, BrokenPipeNeverFailsTheShard) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(1, 99);
  const std::vector<EvalInput> inputs =
      prepare_eval_inputs(model, samples, 6, false);
  const SchemeRef scheme = SchemeRef::parse("none");
  const BoundStore bounds;
  CampaignConfig config;
  config.trials_per_input = 3;
  config.gen_tokens = 4;
  const std::size_t total = inputs.size() * config.trials_per_input;

  ShardManifest manifest;
  manifest.model = "micro";
  manifest.model_digest = weights_digest_hex(model.weights());
  manifest.dataset = "synthqa";
  manifest.scheme = scheme.display();
  manifest.fault_model = fault_model_name(config.fault_model);
  manifest.vtype = value_type_name(config.vtype);
  manifest.campaign_seed = config.seed;
  manifest.trials_per_input = config.trials_per_input;
  manifest.gen_tokens = config.gen_tokens;
  manifest.faults_per_trial = config.faults_per_trial;
  manifest.n_inputs = inputs.size();
  manifest.total_trials = total;
  manifest.last_trial = total;

  // Close the read end before the run: every write hits EPIPE. SIGPIPE is
  // suppressed per-write (MSG_NOSIGNAL semantics via signal(SIGPIPE) in
  // the CLI; here the emitter's error path simply disables itself).
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);
  signal(SIGPIPE, SIG_IGN);
  ShardTelemetryConfig telemetry;
  telemetry.fd = fds[1];
  telemetry.interval_ms = 0;

  const std::string log = temp_path("ft2_teltest_epipe.jsonl");
  std::remove(log.c_str());
  const ShardRunResult result =
      run_campaign_shard(model, inputs, scheme, bounds, config, manifest,
                         log, false, telemetry);
  close(fds[1]);
  EXPECT_EQ(result.executed, total);
  std::remove(log.c_str());
}

}  // namespace
}  // namespace ft2
