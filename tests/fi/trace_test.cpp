#include "fi/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ft2 {
namespace {

TrialRecord make_record(std::size_t trial, Outcome outcome) {
  TrialRecord r;
  r.trial = trial;
  r.input_index = trial % 3;
  r.plan.position = 10 + trial;
  r.plan.site = {1, LayerKind::kVProj};
  r.plan.neuron = 7;
  r.plan.flips.count = 2;
  r.plan.flips.bits = {14, 3};
  r.plan.in_first_token = trial == 0;
  r.outcome = outcome;
  r.generated_text = "bob lives in paris";
  return r;
}

TEST(Trace, CollectsViaCallback) {
  TraceCollector collector;
  auto cb = collector.callback();
  cb(make_record(0, Outcome::kMaskedIdentical));
  cb(make_record(1, Outcome::kSdc));
  cb(make_record(2, Outcome::kSdc));
  EXPECT_EQ(collector.size(), 3u);
  EXPECT_EQ(collector.sdc_records().size(), 2u);
  collector.clear();
  EXPECT_EQ(collector.size(), 0u);
}

TEST(Trace, CsvFormat) {
  TraceCollector collector;
  collector.callback()(make_record(5, Outcome::kSdc));
  std::ostringstream os;
  collector.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("trial,input,position"), std::string::npos);
  EXPECT_NE(csv.find("V_PROJ"), std::string::npos);
  EXPECT_NE(csv.find("14+3"), std::string::npos);
  EXPECT_NE(csv.find("sdc"), std::string::npos);
  EXPECT_NE(csv.find("\"bob lives in paris\""), std::string::npos);
  // Header + one data row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(Trace, JsonFormat) {
  TraceCollector collector;
  collector.callback()(make_record(1, Outcome::kMaskedSemantic));
  const Json j = collector.to_json();
  EXPECT_TRUE(j.is_array());
  EXPECT_EQ(j.size(), 1u);
  const std::string s = j.dump(-1);
  EXPECT_NE(s.find("\"outcome\": \"masked_semantic\""), std::string::npos);
  EXPECT_NE(s.find("\"layer\": \"V_PROJ\""), std::string::npos);
}

TEST(Trace, OutcomeNames) {
  EXPECT_STREQ(outcome_name(Outcome::kSdc), "sdc");
  EXPECT_STREQ(outcome_name(Outcome::kMaskedIdentical), "masked_identical");
  EXPECT_STREQ(outcome_name(Outcome::kNotInjected), "not_injected");
}

TEST(Trace, CampaignIntegration) {
  // Run a tiny campaign with tracing and check record consistency.
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 1;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(4);
  const TransformerLM model(c, init_weights(c, rng));

  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 5);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  CampaignConfig config;
  config.trials_per_input = 10;
  config.gen_tokens = 6;

  TraceCollector collector;
  const auto result =
      run_campaign(model, inputs, scheme_spec(SchemeKind::kNone, c),
                   BoundStore{}, config, collector.callback());
  EXPECT_EQ(collector.size(), result.trials);
  std::size_t sdc_in_trace = 0;
  for (const auto& r : collector.records()) {
    EXPECT_LT(r.input_index, inputs.size());
    if (r.outcome == Outcome::kSdc) ++sdc_in_trace;
  }
  EXPECT_EQ(sdc_in_trace, result.sdc);
}

}  // namespace
}  // namespace ft2
