#include "fi/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace ft2 {
namespace {

TrialRecord make_record(std::size_t trial, Outcome outcome) {
  TrialRecord r;
  r.trial = trial;
  r.input_index = trial % 3;
  r.plan.position = 10 + trial;
  r.plan.site = {1, LayerKind::kVProj};
  r.plan.neuron = 7;
  r.plan.flips.count = 2;
  r.plan.flips.bits = {14, 3};
  r.plan.in_first_token = trial == 0;
  r.outcome = outcome;
  r.generated_text = "bob lives in paris";
  r.fault_model = FaultModel::kDoubleBit;
  r.fired = true;
  r.nan_detections = 1;
  r.oob_detections = 2;
  r.detections = 3;
  r.detect_position = static_cast<long long>(r.plan.position) + 1;
  r.injected_original = 0.125f;
  r.injected_value = -3.5f;
  r.clips = {{LayerKind::kVProj, 11, 123.456f},
             {LayerKind::kFc2, 12, -9.25f}};
  return r;
}

TEST(Trace, CollectsViaCallback) {
  TraceCollector collector;
  auto cb = collector.callback();
  cb(make_record(0, Outcome::kMaskedIdentical));
  cb(make_record(1, Outcome::kSdc));
  cb(make_record(2, Outcome::kSdc));
  EXPECT_EQ(collector.size(), 3u);
  EXPECT_EQ(collector.sdc_records().size(), 2u);
  collector.clear();
  EXPECT_EQ(collector.size(), 0u);
}

TEST(Trace, CsvFormat) {
  TraceCollector collector;
  collector.callback()(make_record(5, Outcome::kSdc));
  std::ostringstream os;
  collector.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("trial,input,position"), std::string::npos);
  EXPECT_NE(csv.find("V_PROJ"), std::string::npos);
  EXPECT_NE(csv.find("14+3"), std::string::npos);
  EXPECT_NE(csv.find("sdc"), std::string::npos);
  EXPECT_NE(csv.find("\"bob lives in paris\""), std::string::npos);
  // Header + one data row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(Trace, JsonFormat) {
  TraceCollector collector;
  collector.callback()(make_record(1, Outcome::kMaskedSemantic));
  const Json j = collector.to_json();
  EXPECT_TRUE(j.is_array());
  EXPECT_EQ(j.size(), 1u);
  const std::string s = j.dump(-1);
  EXPECT_NE(s.find("\"outcome\": \"masked_semantic\""), std::string::npos);
  EXPECT_NE(s.find("\"layer\": \"V_PROJ\""), std::string::npos);
}

TEST(Trace, OutcomeNames) {
  EXPECT_STREQ(outcome_name(Outcome::kSdc), "sdc");
  EXPECT_STREQ(outcome_name(Outcome::kMaskedIdentical), "masked_identical");
  EXPECT_STREQ(outcome_name(Outcome::kNotInjected), "not_injected");
}

TEST(Trace, FieldOrderIsSharedAcrossFormats) {
  // CSV columns and JSON keys must agree exactly — both come from
  // trial_record_fields(), the single source of truth.
  TraceCollector collector;
  collector.callback()(make_record(0, Outcome::kSdc));
  std::ostringstream os;
  collector.write_csv(os);
  const std::string header = os.str().substr(0, os.str().find('\n'));

  const Json obj = trial_record_to_json(collector.records()[0]);
  std::string joined;
  for (const std::string& key : obj.keys()) {
    if (!joined.empty()) joined += ',';
    joined += key;
  }
  EXPECT_EQ(header, joined);
  // Pin the schema: renaming/reordering a field is a format break and must
  // be a conscious decision.
  EXPECT_EQ(joined,
            "trial,input,position,in_first_token,block,layer,neuron,bits,"
            "dtype,outcome,generated,fault_model,fired,detections,"
            "nan_detections,oob_detections,detect_position,"
            "injected_original,injected_value,clips,scheme,trial_ms");
}

std::string jsonl_of(const std::vector<TrialRecord>& records) {
  std::ostringstream os;
  for (const TrialRecord& r : records) {
    trial_record_to_json(r).write(os, -1);
    os << '\n';
  }
  return os.str();
}

TEST(Trace, CsvRoundTripsIncludingAwkwardValues) {
  TraceCollector collector;
  auto cb = collector.callback();
  TrialRecord tricky = make_record(0, Outcome::kSdc);
  tricky.generated_text = "says \"hi\", twice";  // embedded quote + comma
  tricky.injected_value = std::numeric_limits<float>::infinity();
  tricky.injected_original = std::numeric_limits<float>::quiet_NaN();
  cb(tricky);
  cb(make_record(1, Outcome::kMaskedIdentical));
  TrialRecord bare = make_record(2, Outcome::kNotInjected);
  bare.fired = false;
  bare.clips.clear();
  bare.generated_text.clear();
  cb(bare);

  std::ostringstream os;
  collector.write_csv(os);
  std::istringstream is(os.str());
  const std::vector<TrialRecord> loaded = read_trial_records_csv(is);
  ASSERT_EQ(loaded.size(), collector.size());
  // Bit-for-bit: re-serializing the loaded records reproduces the
  // original text (inf/nan survive via the %.9g string encoding).
  EXPECT_EQ(jsonl_of(loaded), jsonl_of(collector.records()));
  EXPECT_TRUE(std::isinf(loaded[0].injected_value));
  EXPECT_TRUE(std::isnan(loaded[0].injected_original));
  EXPECT_EQ(loaded[0].generated_text, "says \"hi\", twice");
  ASSERT_EQ(loaded[0].clips.size(), 2u);
  EXPECT_EQ(loaded[0].clips[1].kind, LayerKind::kFc2);
  EXPECT_EQ(loaded[0].clips[1].position, 12u);
  EXPECT_FLOAT_EQ(loaded[0].clips[1].original, -9.25f);
  EXPECT_EQ(loaded[0].detect_position, 11);
  EXPECT_EQ(loaded[2].detect_position, 13);
  EXPECT_FALSE(loaded[2].fired);
}

TEST(Trace, JsonlAndJsonRoundTrip) {
  TraceCollector collector;
  auto cb = collector.callback();
  cb(make_record(0, Outcome::kMaskedSemantic));
  cb(make_record(1, Outcome::kSdc));

  std::ostringstream jl;
  collector.write_jsonl(jl);
  std::istringstream jl_in(jl.str());
  const auto from_jsonl = read_trial_records_jsonl(jl_in);
  ASSERT_EQ(from_jsonl.size(), 2u);
  EXPECT_EQ(jsonl_of(from_jsonl), jl.str());

  const auto from_json = read_trial_records_json(
      Json::parse(collector.to_json().dump(2)));
  ASSERT_EQ(from_json.size(), 2u);
  EXPECT_EQ(jsonl_of(from_json), jl.str());
}

TEST(Trace, MissingTrailingFieldsDefault) {
  // Logs recorded before a field existed still load: a pre-forensics JSONL
  // line without the newer keys parses with defaults.
  std::istringstream is(
      "{\"trial\": 4, \"position\": 9, \"layer\": \"FC1\", "
      "\"outcome\": \"sdc\"}\n");
  const auto loaded = read_trial_records_jsonl(is);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].trial, 4u);
  EXPECT_EQ(loaded[0].plan.site.kind, LayerKind::kFc1);
  EXPECT_EQ(loaded[0].outcome, Outcome::kSdc);
  EXPECT_EQ(loaded[0].fault_model, FaultModel::kSingleBit);
  EXPECT_FALSE(loaded[0].fired);
  EXPECT_EQ(loaded[0].detect_position, -1);
  EXPECT_TRUE(loaded[0].clips.empty());
}

TEST(Trace, StreamingSinkAndMemoryCap) {
  std::ostringstream sink;
  TraceCollector collector(&sink, /*max_records=*/2);
  auto cb = collector.callback();
  for (std::size_t i = 0; i < 5; ++i) cb(make_record(i, Outcome::kSdc));

  // Every record streams to the sink; memory holds only the capped prefix.
  EXPECT_EQ(collector.recorded(), 5u);
  EXPECT_EQ(collector.size(), 2u);
  std::istringstream is(sink.str());
  const auto streamed = read_trial_records_jsonl(is);
  ASSERT_EQ(streamed.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(streamed[i].trial, i);
  // The streamed lines are exactly the JSONL serialization.
  EXPECT_EQ(sink.str(), jsonl_of(streamed));
}

TEST(Trace, NameInverses) {
  for (Outcome o : {Outcome::kMaskedIdentical, Outcome::kMaskedSemantic,
                    Outcome::kSdc, Outcome::kNotInjected}) {
    EXPECT_EQ(outcome_from_name(outcome_name(o)), o);
  }
  for (FaultModel m : all_fault_models()) {
    EXPECT_EQ(fault_model_from_name(fault_model_name(m)), m);
  }
  EXPECT_EQ(value_type_from_name("fp16"), ValueType::kF16);
  EXPECT_EQ(value_type_from_name("fp32"), ValueType::kF32);
  EXPECT_THROW(outcome_from_name("bogus"), Error);
  EXPECT_THROW(fault_model_from_name("bogus"), Error);
  EXPECT_THROW(value_type_from_name("bogus"), Error);
}

TEST(Trace, CampaignIntegration) {
  // Run a tiny campaign with tracing and check record consistency.
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 1;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(4);
  const TransformerLM model(c, init_weights(c, rng));

  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 5);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  CampaignConfig config;
  config.trials_per_input = 10;
  config.gen_tokens = 6;

  TraceCollector collector;
  const auto result =
      run_campaign(model, inputs, scheme_spec(SchemeKind::kNone, c),
                   BoundStore{}, config, collector.callback());
  EXPECT_EQ(collector.size(), result.trials);
  std::size_t sdc_in_trace = 0;
  for (const auto& r : collector.records()) {
    EXPECT_LT(r.input_index, inputs.size());
    if (r.outcome == Outcome::kSdc) ++sdc_in_trace;
  }
  EXPECT_EQ(sdc_in_trace, result.sdc);
}

TEST(Trace, TornTailRejectedEvenWhenItParsesAsJson) {
  // The dangerous torn write: truncation lands exactly on a '}' so the
  // fragment parses as valid JSON for a prefix of the record's fields.
  // Missing the trailing newline is what gives it away.
  std::string log = jsonl_of({make_record(0, Outcome::kSdc),
                              make_record(1, Outcome::kMaskedIdentical)});
  log += "{\"trial\": 2, \"input\": 1}";  // no newline
  {
    std::istringstream is(log);
    EXPECT_THROW(read_trial_records_jsonl(is), Error);
  }
  std::istringstream is(log);
  const JsonlScan scan = scan_trial_records_jsonl(is);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.torn_line, "{\"trial\": 2, \"input\": 1}");
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1].trial, 1u);
  // valid_bytes is exactly the intact prefix: truncating there drops only
  // the torn fragment.
  EXPECT_EQ(scan.valid_bytes, log.size() - scan.torn_line.size());
  EXPECT_EQ(log.substr(0, scan.valid_bytes),
            jsonl_of({make_record(0, Outcome::kSdc),
                      make_record(1, Outcome::kMaskedIdentical)}));
}

TEST(Trace, TornTailCutMidLineRejectedAndScanned) {
  const std::string intact = jsonl_of({make_record(0, Outcome::kSdc)});
  std::string log = intact + jsonl_of({make_record(1, Outcome::kSdc)});
  log.resize(log.size() - 17);  // cut inside the final record
  {
    std::istringstream is(log);
    EXPECT_THROW(read_trial_records_jsonl(is), Error);
  }
  std::istringstream is(log);
  const JsonlScan scan = scan_trial_records_jsonl(is);
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, intact.size());
}

TEST(Trace, NewlineTerminatedGarbageFinalLineIsTorn) {
  // A crash can flush the newline without the whole line before it; the
  // final line gets the benefit of the doubt, interior lines do not.
  const std::string intact = jsonl_of({make_record(0, Outcome::kSdc)});
  std::istringstream tail_garbage(intact + "{\"trial\": 1, \"inp\n");
  const JsonlScan scan = scan_trial_records_jsonl(tail_garbage);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, intact.size());

  std::istringstream mid_garbage(intact + "{\"trial\": 1, \"inp\n" + intact);
  EXPECT_THROW(scan_trial_records_jsonl(mid_garbage), Error);
}

TEST(Trace, CleanLogScansComplete) {
  const std::string log = jsonl_of(
      {make_record(0, Outcome::kSdc), make_record(1, Outcome::kSdc)});
  std::istringstream is(log);
  const JsonlScan scan = scan_trial_records_jsonl(is);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.valid_bytes, log.size());
  EXPECT_TRUE(scan.manifests.empty());
}

TEST(Trace, ShardManifestLinesAreSkippedByRecordReaders) {
  std::string log = "{\"ft2_shard\": 1, \"model\": \"opt-xs\"}\n";
  log += jsonl_of({make_record(0, Outcome::kSdc)});
  std::istringstream strict(log);
  const auto records = read_trial_records_jsonl(strict);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trial, 0u);
  std::istringstream tolerant(log);
  const JsonlScan scan = scan_trial_records_jsonl(tolerant);
  EXPECT_EQ(scan.manifests.size(), 1u);
  EXPECT_EQ(scan.records.size(), 1u);
}

}  // namespace
}  // namespace ft2
