#include "fi/fault_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ft2 {
namespace {

TEST(FaultModel, SingleBitFlipsExactlyOneBit) {
  PhiloxStream rng(1, 0);
  for (int i = 0; i < 200; ++i) {
    const auto flips = sample_bit_flips(FaultModel::kSingleBit,
                                        ValueType::kF16, rng);
    ASSERT_EQ(flips.count, 1);
    EXPECT_GE(flips.bits[0], 0);
    EXPECT_LT(flips.bits[0], 16);
  }
}

TEST(FaultModel, DoubleBitFlipsTwoDistinctBits) {
  PhiloxStream rng(2, 0);
  for (int i = 0; i < 500; ++i) {
    const auto flips = sample_bit_flips(FaultModel::kDoubleBit,
                                        ValueType::kF16, rng);
    ASSERT_EQ(flips.count, 2);
    EXPECT_NE(flips.bits[0], flips.bits[1]);
    for (int b = 0; b < 2; ++b) {
      EXPECT_GE(flips.bits[b], 0);
      EXPECT_LT(flips.bits[b], 16);
    }
  }
}

TEST(FaultModel, ExponentFlipStaysInExponentField) {
  PhiloxStream rng16(3, 0), rng32(3, 1);
  std::set<int> seen16, seen32;
  for (int i = 0; i < 500; ++i) {
    const auto f16flip = sample_bit_flips(FaultModel::kExponentBit,
                                          ValueType::kF16, rng16);
    EXPECT_GE(f16flip.bits[0], 10);
    EXPECT_LE(f16flip.bits[0], 14);
    seen16.insert(f16flip.bits[0]);

    const auto f32flip = sample_bit_flips(FaultModel::kExponentBit,
                                          ValueType::kF32, rng32);
    EXPECT_GE(f32flip.bits[0], 23);
    EXPECT_LE(f32flip.bits[0], 30);
    seen32.insert(f32flip.bits[0]);
  }
  EXPECT_EQ(seen16.size(), 5u);  // all 5 exponent bits hit
  EXPECT_EQ(seen32.size(), 8u);  // all 8 exponent bits hit
}

TEST(FaultModel, ApplyFlipIsInvolution) {
  // Flipping the same bits twice restores the original FP16 value.
  PhiloxStream rng(4, 0);
  for (int i = 0; i < 200; ++i) {
    const float v = static_cast<float>(static_cast<int>(rng.uniform(2000)) -
                                       1000) /
                    64.0f;
    const auto flips = sample_bit_flips(FaultModel::kDoubleBit,
                                        ValueType::kF16, rng);
    const float once = apply_bit_flips(v, flips, ValueType::kF16);
    const float twice = apply_bit_flips(once, flips, ValueType::kF16);
    if (std::isnan(once)) continue;  // NaN payload not guaranteed to return
    EXPECT_EQ(twice, quantize_f16(v)) << v;
  }
}

TEST(FaultModel, TopExponentFlipOfSmallValueIsHuge) {
  // Figure 7(a): 0.5 with the top exponent bit flipped becomes 2^16 * 0.5.
  BitFlips flips;
  flips.count = 1;
  flips.bits[0] = 14;
  const float faulty = apply_bit_flips(0.5f, flips, ValueType::kF16);
  EXPECT_EQ(faulty, 32768.0f);
}

TEST(FaultModel, TopExponentFlipOfVulnerableValueIsNan) {
  // Figure 7(b): 1.5 in the NaN-vulnerable area becomes NaN.
  BitFlips flips;
  flips.count = 1;
  flips.bits[0] = 14;
  EXPECT_TRUE(std::isnan(apply_bit_flips(1.5f, flips, ValueType::kF16)));
  // Exactly 1.0 has a zero mantissa: becomes inf, not NaN.
  const float one_flipped = apply_bit_flips(1.0f, flips, ValueType::kF16);
  EXPECT_TRUE(std::isinf(one_flipped));
}

TEST(FaultModel, SignBitFlipNegates) {
  BitFlips flips;
  flips.count = 1;
  flips.bits[0] = 15;
  EXPECT_EQ(apply_bit_flips(2.5f, flips, ValueType::kF16), -2.5f);
  flips.bits[0] = 31;
  EXPECT_EQ(apply_bit_flips(2.5f, flips, ValueType::kF32), -2.5f);
}

TEST(FaultModel, MantissaFlipIsSmallPerturbation) {
  BitFlips flips;
  flips.count = 1;
  flips.bits[0] = 0;  // lowest mantissa bit
  const float faulty = apply_bit_flips(1.0f, flips, ValueType::kF16);
  EXPECT_NEAR(faulty, 1.0f, 1e-3f);
  EXPECT_NE(faulty, 1.0f);
}

TEST(FaultModel, F32FlipPreservesOtherBits) {
  BitFlips flips;
  flips.count = 1;
  flips.bits[0] = 23;
  const float v = 3.14159f;
  const float faulty = apply_bit_flips(v, flips, ValueType::kF32);
  EXPECT_EQ(f32_bits(faulty) ^ f32_bits(v), 1u << 23);
}

TEST(FaultModel, Names) {
  EXPECT_STREQ(fault_model_name(FaultModel::kSingleBit), "1-bit");
  EXPECT_STREQ(fault_model_name(FaultModel::kDoubleBit), "2-bit");
  EXPECT_STREQ(fault_model_name(FaultModel::kExponentBit), "EXP");
  EXPECT_STREQ(value_type_name(ValueType::kF16), "fp16");
  EXPECT_EQ(all_fault_models().size(), 3u);
}

}  // namespace
}  // namespace ft2
