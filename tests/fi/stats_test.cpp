// Campaign statistics golden tests: Wilson intervals against published
// reference values (Newcombe 1998's worked examples plus the p=0 / p=1 /
// n=1 edges) and bit-reproducible bootstrap CIs under a fixed Philox seed.
#include "fi/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"

namespace ft2 {
namespace {

constexpr double kTol = 1e-4;

void expect_wilson(std::size_t k, std::size_t n, double lo, double hi) {
  const ProportionCI ci = wilson_ci(k, n);
  EXPECT_NEAR(ci.lo, lo, kTol) << k << "/" << n;
  EXPECT_NEAR(ci.hi, hi, kTol) << k << "/" << n;
  EXPECT_DOUBLE_EQ(ci.p, static_cast<double>(k) / static_cast<double>(n));
}

TEST(WilsonCI, MatchesPublishedReferenceValues) {
  // Newcombe (1998), "Two-sided confidence intervals for the single
  // proportion", worked examples for the Wilson score method at 95%.
  expect_wilson(81, 263, 0.255289, 0.366210);
  expect_wilson(2, 29, 0.019121, 0.219646);
  // Standard n=10 table values.
  expect_wilson(0, 10, 0.0, 0.277533);
  expect_wilson(1, 10, 0.017876, 0.404150);
  expect_wilson(5, 10, 0.236593, 0.763407);
  expect_wilson(10, 10, 0.722467, 1.0);
}

TEST(WilsonCI, EdgeCases) {
  // p = 0 pins the lower bound to exactly 0, p = 1 the upper to exactly 1
  // (the Wilson limits are exact there, no clamping slop).
  EXPECT_DOUBLE_EQ(wilson_ci(0, 10).lo, 0.0);
  EXPECT_DOUBLE_EQ(wilson_ci(10, 10).hi, 1.0);
  // n = 1: the widest informative interval.
  expect_wilson(0, 1, 0.0, 0.793451);
  expect_wilson(1, 1, 0.206549, 1.0);
  // The interval always brackets the point estimate.
  for (std::size_t k : {0u, 1u, 3u, 7u, 10u}) {
    const ProportionCI ci = wilson_ci(k, 10);
    EXPECT_LE(ci.lo, ci.p);
    EXPECT_GE(ci.hi, ci.p);
    EXPECT_GE(ci.lo, 0.0);
    EXPECT_LE(ci.hi, 1.0);
  }
}

TEST(BinomialSample, EdgeCasesAndRange) {
  PhiloxStream rng(7, 0);
  EXPECT_EQ(binomial_sample(rng, 0, 0.5), 0u);
  EXPECT_EQ(binomial_sample(rng, 100, 0.0), 0u);
  EXPECT_EQ(binomial_sample(rng, 100, -1.0), 0u);
  EXPECT_EQ(binomial_sample(rng, 100, 1.0), 100u);
  EXPECT_EQ(binomial_sample(rng, 100, 2.0), 100u);
  // Small-n (Bernoulli-sum) and large-n (CDF-inversion) paths both land
  // in [0, n] and near n*p for a concentrated distribution.
  for (std::size_t n : {10u, 64u, 65u, 10000u}) {
    const std::size_t k = binomial_sample(rng, n, 0.3);
    EXPECT_LE(k, n);
  }
  const std::size_t big = binomial_sample(rng, 100000, 0.3);
  EXPECT_GT(big, 28000u);
  EXPECT_LT(big, 32000u);
}

TEST(BinomialSample, DeterministicUnderFixedStream) {
  PhiloxStream a(42, 9);
  PhiloxStream b(42, 9);
  for (std::size_t n : {5u, 64u, 1000u, 100000u}) {
    EXPECT_EQ(binomial_sample(a, n, 0.37), binomial_sample(b, n, 0.37)) << n;
  }
}

TEST(BootstrapCI, DeterministicUnderFixedSeed) {
  const BootstrapCI a = bootstrap_proportion_ci(37, 500);
  const BootstrapCI b = bootstrap_proportion_ci(37, 500);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_DOUBLE_EQ(a.p, b.p);
  EXPECT_EQ(a.resamples, b.resamples);

  // A different seed resamples differently (still deterministically).
  BootstrapOptions other;
  other.seed = 0xdeadbeef;
  const BootstrapCI c = bootstrap_proportion_ci(37, 500, other);
  EXPECT_TRUE(c.lo != a.lo || c.hi != a.hi);
}

TEST(BootstrapCI, BracketsThePointEstimate) {
  for (std::size_t k : {1u, 37u, 250u, 499u}) {
    const BootstrapCI ci = bootstrap_proportion_ci(k, 500);
    const double p = static_cast<double>(k) / 500.0;
    EXPECT_LE(ci.lo, p) << k;
    EXPECT_GE(ci.hi, p) << k;
    EXPECT_GE(ci.lo, 0.0);
    EXPECT_LE(ci.hi, 1.0);
    EXPECT_LT(ci.lo, ci.hi) << k;
  }
  // Near the campaign regime (sub-1% SDC at large n) the bootstrap and
  // Wilson intervals agree to well under a percentage point.
  const BootstrapCI boot = bootstrap_proportion_ci(250, 100000);
  const ProportionCI wilson = wilson_ci(250, 100000);
  EXPECT_NEAR(boot.lo, wilson.lo, 5e-4);
  EXPECT_NEAR(boot.hi, wilson.hi, 5e-4);
}

TEST(BootstrapCI, DegenerateInputsCollapseCleanly) {
  const BootstrapCI none = bootstrap_proportion_ci(0, 0);
  EXPECT_DOUBLE_EQ(none.p, 0.0);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 0.0);

  const BootstrapCI zero = bootstrap_proportion_ci(0, 100);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_DOUBLE_EQ(zero.hi, 0.0);

  const BootstrapCI one = bootstrap_proportion_ci(100, 100);
  EXPECT_DOUBLE_EQ(one.lo, 1.0);
  EXPECT_DOUBLE_EQ(one.hi, 1.0);
}

TEST(BootstrapCI, RejectsInvalidArguments) {
  EXPECT_THROW(bootstrap_proportion_ci(11, 10), Error);
  BootstrapOptions bad;
  bad.resamples = 0;
  EXPECT_THROW(bootstrap_proportion_ci(1, 10, bad), Error);
  bad = {};
  bad.confidence = 1.0;
  EXPECT_THROW(bootstrap_proportion_ci(1, 10, bad), Error);
  bad.confidence = 0.0;
  EXPECT_THROW(bootstrap_proportion_ci(1, 10, bad), Error);
}

}  // namespace
}  // namespace ft2
