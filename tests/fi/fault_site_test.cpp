#include "fi/fault_site.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/check.hpp"

namespace ft2 {
namespace {

ModelConfig opt_config() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = 8;
  c.n_blocks = 2;
  c.d_model = 16;
  c.n_heads = 2;
  c.d_ff = 32;
  return c;
}

ModelConfig llama_config() {
  ModelConfig c = opt_config();
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  return c;
}

TEST(FaultSite, NeuronCountMatchesArchitecture) {
  // OPT block: Q+K+V+OUT = 4*16, FC1 = 32, FC2 = 16 => 112 per block.
  const FaultSiteSpace space(opt_config());
  EXPECT_EQ(space.neurons_per_position(), 2u * (4u * 16u + 32u + 16u));

  // Llama block: Q+K+V+OUT = 4*16, GATE+UP = 2*32, DOWN = 16 => 144/block.
  const FaultSiteSpace llama(llama_config());
  EXPECT_EQ(llama.neurons_per_position(), 2u * (4u * 16u + 2u * 32u + 16u));
}

TEST(FaultSite, DecodeIsBijective) {
  const FaultSiteSpace space(llama_config());
  std::map<std::tuple<int, int, std::size_t>, int> seen;
  for (std::size_t i = 0; i < space.neurons_per_position(); ++i) {
    LayerSite site;
    std::size_t neuron = 0;
    space.decode(i, site, neuron);
    EXPECT_TRUE(is_linear_layer(site.kind));
    EXPECT_LT(neuron, space.config().layer_output_dim(site.kind));
    const auto key = std::make_tuple(site.block,
                                     static_cast<int>(site.kind), neuron);
    EXPECT_EQ(seen.count(key), 0u) << i;
    seen[key] = 1;
  }
  EXPECT_EQ(seen.size(), space.neurons_per_position());
}

TEST(FaultSite, DecodeOutOfRangeThrows) {
  const FaultSiteSpace space(opt_config());
  LayerSite site;
  std::size_t neuron;
  EXPECT_THROW(space.decode(space.neurons_per_position(), site, neuron),
               Error);
}

TEST(FaultSite, SampleIsDeterministicPerStream) {
  const FaultSiteSpace space(opt_config());
  PhiloxStream r1(7, 3), r2(7, 3);
  const auto a = space.sample(20, 10, FaultModel::kSingleBit, ValueType::kF16,
                              r1);
  const auto b = space.sample(20, 10, FaultModel::kSingleBit, ValueType::kF16,
                              r2);
  EXPECT_EQ(a.position, b.position);
  EXPECT_EQ(a.site.block, b.site.block);
  EXPECT_EQ(a.site.kind, b.site.kind);
  EXPECT_EQ(a.neuron, b.neuron);
  EXPECT_EQ(a.flips.bits[0], b.flips.bits[0]);
}

TEST(FaultSite, FirstTokenProbabilityIsOneOverGenTokens) {
  // With gen_tokens = G, P(first-token phase) should be ~1/G — the paper's
  // execution-time argument (Fig. 10).
  const FaultSiteSpace space(opt_config());
  const std::size_t prompt = 25, gen = 10;
  std::size_t first = 0;
  const std::size_t n = 20000;
  for (std::size_t t = 0; t < n; ++t) {
    PhiloxStream rng(11, t);
    const auto plan = space.sample(prompt, gen, FaultModel::kSingleBit,
                                   ValueType::kF16, rng);
    if (plan.in_first_token) {
      ++first;
      EXPECT_LT(plan.position, prompt);
    } else {
      EXPECT_GE(plan.position, prompt);
      EXPECT_LT(plan.position, prompt + gen - 1);
    }
  }
  const double frac = static_cast<double>(first) / static_cast<double>(n);
  EXPECT_NEAR(frac, 1.0 / static_cast<double>(gen), 0.01);
}

TEST(FaultSite, FirstTokenOnlyPinsToPrefill) {
  const FaultSiteSpace space(llama_config());
  for (std::size_t t = 0; t < 200; ++t) {
    PhiloxStream rng(13, t);
    const auto plan = space.sample(18, 12, FaultModel::kExponentBit,
                                   ValueType::kF16, rng, true);
    EXPECT_TRUE(plan.in_first_token);
    EXPECT_LT(plan.position, 18u);
  }
}

TEST(FaultSite, NeuronsUniformAcrossLayerKinds) {
  // Wider layers must receive proportionally more faults.
  const FaultSiteSpace space(opt_config());
  std::map<int, std::size_t> per_kind;
  const std::size_t n = 30000;
  for (std::size_t t = 0; t < n; ++t) {
    PhiloxStream rng(17, t);
    const auto plan = space.sample(10, 8, FaultModel::kSingleBit,
                                   ValueType::kF16, rng);
    ++per_kind[static_cast<int>(plan.site.kind)];
  }
  const double total_neurons =
      static_cast<double>(space.neurons_per_position());
  const ModelConfig c = opt_config();
  for (LayerKind k : {LayerKind::kQProj, LayerKind::kFc1, LayerKind::kFc2}) {
    const double expected =
        static_cast<double>(n) *
        static_cast<double>(c.layer_output_dim(k) * c.n_blocks) /
        total_neurons;
    const double got =
        static_cast<double>(per_kind[static_cast<int>(k)]);
    EXPECT_NEAR(got / expected, 1.0, 0.12) << layer_kind_name(k);
  }
}

}  // namespace
}  // namespace ft2
