// End-to-end campaign coverage for the registry-only schemes: abft-linear
// and ft2-adaptive must run through the full fault-injection machinery, be
// bit-identical with prefix reuse on and off (their capture_state /
// restore_state implementations carry calibration across trial forks), and
// stamp their display name into every trial record.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ft2.hpp"
#include "fi/trace.hpp"

namespace ft2 {
namespace {

TransformerLM tiny_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(21);
  return TransformerLM(c, init_weights(c, rng));
}

/// Records normalized for determinism comparison (trial_ms is wall time).
std::string records_digest(std::vector<TrialRecord> records) {
  std::string out;
  for (TrialRecord& r : records) {
    r.trial_ms = 0.0;
    out += trial_record_to_json(r).dump(-1);
    out += '\n';
  }
  return out;
}

std::vector<TrialRecord> run_with_reuse(const TransformerLM& model,
                                        const std::vector<EvalInput>& inputs,
                                        const SchemeRef& scheme,
                                        bool prefix_reuse) {
  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = 8;
  config.gen_tokens = 5;
  config.seed = 9;
  config.capture_clips = true;
  config.prefix_reuse = prefix_reuse;
  TraceCollector collector;
  run_campaign(model, inputs, scheme, BoundStore{}, config,
               collector.callback());
  return collector.records();
}

class NewSchemeCampaign : public ::testing::TestWithParam<const char*> {};

TEST_P(NewSchemeCampaign, RunsAndIsBitIdenticalAcrossPrefixReuse) {
  const SchemeRef scheme = SchemeRef::parse(GetParam());
  const TransformerLM model = tiny_model();
  const auto gen = make_generator(DatasetKind::kSynthQA);
  const auto samples = gen->generate_many(2, 5);
  const auto inputs = prepare_eval_inputs(model, samples, 5, false);
  ASSERT_FALSE(inputs.empty());

  const auto off = run_with_reuse(model, inputs, scheme, false);
  const auto on = run_with_reuse(model, inputs, scheme, true);
  ASSERT_EQ(off.size(), inputs.size() * 8);
  EXPECT_EQ(records_digest(off), records_digest(on));

  for (const TrialRecord& r : off) {
    EXPECT_EQ(r.scheme, scheme.display());
    EXPECT_GT(r.trial_ms, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, NewSchemeCampaign,
                         ::testing::Values("abft-linear", "ft2-adaptive",
                                           "ft2-adaptive:threshold=0.5",
                                           "abft-linear:margin=2"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-' || c == ':' || c == '=' ||
                                 c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace ft2
