// Campaign report aggregation: the flight-recorder log IS the campaign.
// The headline pin: aggregating recorded trial records reproduces the
// exact CampaignResult counts the in-process run returned, for every
// on-disk format `ft2 report` accepts.
#include "fi/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "fi/shard.hpp"
#include "nn/weights.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(21);
  return TransformerLM(c, init_weights(c, rng));
}

struct CampaignRun {
  CampaignResult result;
  TraceCollector trace;
};

CampaignRun small_campaign(bool capture_clips = true) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 99);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  CampaignConfig config;
  config.trials_per_input = 15;
  config.gen_tokens = 6;
  config.fault_model = FaultModel::kDoubleBit;
  config.capture_clips = capture_clips;
  CampaignRun run;
  run.result = run_campaign(model, inputs, SchemeKind::kFt2, BoundStore{},
                            config, run.trace.callback());
  return run;
}

void expect_result_equal(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.masked_identical, b.masked_identical);
  EXPECT_EQ(a.masked_semantic, b.masked_semantic);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.not_injected, b.not_injected);
}

TEST(CampaignReport, AggregationReproducesCampaignResultExactly) {
  const CampaignRun run = small_campaign();
  ASSERT_GT(run.result.trials, 0u);

  const CampaignReport report = aggregate_trial_records(run.trace.records());
  expect_result_equal(report.result, run.result);

  // Per-layer tallies partition the trials.
  std::size_t layer_total = 0;
  for (const auto& [kind, tally] : report.by_layer) layer_total += tally.faults;
  EXPECT_EQ(layer_total, run.result.trials);

  // A 2-bit campaign counts each trial under both of its flipped bits.
  std::size_t bit_total = 0;
  for (const auto& [model, per_layer] : report.by_model_layer_bit) {
    EXPECT_EQ(model, FaultModel::kDoubleBit);
    for (const auto& [kind, per_bit] : per_layer) {
      for (const auto& [bit, tally] : per_bit) bit_total += tally.faults;
    }
  }
  EXPECT_EQ(bit_total, 2 * run.result.trials);

  // Detection latencies: sorted, one per fired-and-detected-at-or-after-
  // injection trial, each >= 0.
  std::size_t expected_latencies = 0;
  for (const TrialRecord& r : run.trace.records()) {
    if (r.fired && r.detect_position >= 0 &&
        r.detect_position >= static_cast<long long>(r.plan.position)) {
      ++expected_latencies;
    }
  }
  EXPECT_EQ(report.detection_latencies.size(), expected_latencies);
  EXPECT_TRUE(std::is_sorted(report.detection_latencies.begin(),
                             report.detection_latencies.end()));
  for (double l : report.detection_latencies) EXPECT_GE(l, 0.0);
}

TEST(CampaignReport, EveryOnDiskFormatAggregatesIdentically) {
  const CampaignRun run = small_campaign();
  const auto dir = std::filesystem::temp_directory_path();
  const std::string csv = (dir / "ft2_report_test.csv").string();
  const std::string jsonl = (dir / "ft2_report_test.jsonl").string();
  const std::string json = (dir / "ft2_report_test.json").string();
  {
    std::ofstream os(csv);
    run.trace.write_csv(os);
  }
  {
    std::ofstream os(jsonl);
    run.trace.write_jsonl(os);
  }
  {
    std::ofstream os(json);
    run.trace.to_json().write(os, 2);
  }

  for (const std::string& path : {csv, jsonl, json}) {
    const std::vector<TrialRecord> records = load_trial_records(path);
    ASSERT_EQ(records.size(), run.result.trials) << path;
    const CampaignReport report = aggregate_trial_records(records);
    expect_result_equal(report.result, run.result);
    // The whole report matches the in-memory aggregation, not just the
    // outcome counts.
    EXPECT_EQ(report.to_json().dump(-1),
              aggregate_trial_records(run.trace.records()).to_json().dump(-1))
        << path;
    std::remove(path.c_str());
  }
}

TEST(CampaignReport, LatencyQuantileIsExactOrderStatistic) {
  CampaignReport report;
  EXPECT_DOUBLE_EQ(report.latency_quantile(0.5), 0.0);  // empty
  report.detection_latencies = {2.0};
  EXPECT_DOUBLE_EQ(report.latency_quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(report.latency_quantile(1.0), 2.0);
  report.detection_latencies = {0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(report.latency_quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(report.latency_quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(report.latency_quantile(0.5), 1.5);  // interpolated
}

TEST(CampaignReport, TablesAndJsonCoverAllSections) {
  const CampaignRun run = small_campaign();
  const CampaignReport report = aggregate_trial_records(run.trace.records());

  EXPECT_EQ(report.outcome_table().rows(), 5u);  // 4 outcomes + total
  EXPECT_EQ(report.layer_table().rows(), report.by_layer.size());
  EXPECT_EQ(report.latency_table().rows(), 1u);

  const Json doc = report.to_json();
  ASSERT_NE(doc.find("outcomes"), nullptr);
  ASSERT_NE(doc.find("by_layer"), nullptr);
  ASSERT_NE(doc.find("by_model_layer_bit"), nullptr);
  ASSERT_NE(doc.find("detection_latency"), nullptr);
  EXPECT_EQ(static_cast<std::size_t>(
                doc.at("outcomes").at("trials").as_double()),
            run.result.trials);
  EXPECT_EQ(static_cast<std::size_t>(
                doc.at("detection_latency").at("count").as_double()),
            report.detection_latencies.size());
}

// The sharding pin from the issue: splitting the SAME campaign across
// {2, 4, 7} worker ranges (7 does not divide 30 trials, so the partition
// is uneven) and merging the shard logs must reproduce the whole-process
// run bit-for-bit — identical records (modulo wall time) and an identical
// aggregated report.
TEST(CampaignReport, ShardSplitMergeMatchesWholeRunExactly) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 99);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  CampaignConfig config;
  config.trials_per_input = 15;
  config.gen_tokens = 6;
  config.fault_model = FaultModel::kDoubleBit;
  const SchemeRef scheme = SchemeRef::parse("ft2");
  const std::size_t total = inputs.size() * config.trials_per_input;

  // Wall time is observational and differs across processes; zero it so
  // record dumps and report JSON (mean_ms feeds the latter) compare exact.
  const auto strip_timing = [](std::vector<TrialRecord> records) {
    for (TrialRecord& r : records) r.trial_ms = 0.0;
    return records;
  };
  const auto dump_records = [](const std::vector<TrialRecord>& records) {
    std::string out;
    for (const TrialRecord& r : records) {
      out += trial_record_to_json(r).dump(-1);
      out += '\n';
    }
    return out;
  };

  TraceCollector whole;
  const CampaignResult whole_result = run_campaign(
      model, inputs, scheme, BoundStore{}, config, whole.callback());
  ASSERT_EQ(whole_result.trials, total);
  const std::vector<TrialRecord> whole_records = strip_timing(whole.records());
  const std::string whole_dump = dump_records(whole_records);
  const std::string whole_report =
      aggregate_trial_records(whole_records).to_json().dump(-1);

  const auto dir = std::filesystem::temp_directory_path() / "ft2_shard_eq";
  std::filesystem::create_directories(dir);
  for (const std::size_t shards : {2u, 4u, 7u}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    const auto ranges = partition_trials(total, shards);
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < shards; ++i) {
      ShardManifest m;
      m.model = "micro";
      m.model_digest = weights_digest_hex(model.weights());
      m.dataset = "synthqa";
      m.scheme = scheme.display();
      m.fault_model = fault_model_name(config.fault_model);
      m.vtype = value_type_name(config.vtype);
      m.campaign_seed = config.seed;
      m.trials_per_input = config.trials_per_input;
      m.gen_tokens = config.gen_tokens;
      m.faults_per_trial = config.faults_per_trial;
      m.n_inputs = inputs.size();
      m.total_trials = total;
      m.shard_index = i;
      m.shard_count = shards;
      m.first_trial = ranges[i].first;
      m.last_trial = ranges[i].last;
      paths.push_back(shard_log_path(dir.string(), i, shards));
      run_campaign_shard(model, inputs, scheme, BoundStore{}, config, m,
                         paths.back(), /*resume=*/false);
    }

    const ShardMerge merge = merge_shard_logs(paths);
    EXPECT_TRUE(merge.complete());
    EXPECT_EQ(merge.total_trials, total);
    ASSERT_EQ(merge.records.size(), total);
    const std::vector<TrialRecord> merged = strip_timing(merge.records);
    EXPECT_EQ(dump_records(merged), whole_dump);

    const CampaignReport report = aggregate_trial_records(merged);
    expect_result_equal(report.result, whole_result);
    EXPECT_EQ(report.to_json().dump(-1), whole_report);
    for (const std::string& p : paths) std::remove(p.c_str());
  }
  std::filesystem::remove_all(dir);
}

TEST(CampaignReport, LoadRejectsMissingAndEmptyLogs) {
  EXPECT_THROW(load_trial_records("/nonexistent/ft2.jsonl"), Error);
  const auto path =
      (std::filesystem::temp_directory_path() / "ft2_empty.jsonl").string();
  { std::ofstream os(path); }
  EXPECT_THROW(load_trial_records(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ft2
