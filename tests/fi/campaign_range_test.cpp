// Resumable campaigns: disjoint trial ranges compose exactly, because each
// trial's randomness comes from its own Philox stream.
#include <gtest/gtest.h>

#include "core/ft2.hpp"
#include "fi/trace.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(33);
  return TransformerLM(c, init_weights(c, rng));
}

TEST(CampaignRange, SplitRunsComposeExactly) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(3, 5);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = 20;
  config.gen_tokens = 6;
  const auto spec = scheme_spec(SchemeKind::kNone, model.config());
  const std::size_t total = inputs.size() * config.trials_per_input;

  const auto full =
      run_campaign(model, inputs, spec, BoundStore{}, config);
  auto part1 = run_campaign_range(model, inputs, spec, BoundStore{}, config,
                                  0, total / 3);
  const auto part2 = run_campaign_range(model, inputs, spec, BoundStore{},
                                        config, total / 3, total);
  part1.merge(part2);

  EXPECT_EQ(part1.trials, full.trials);
  EXPECT_EQ(part1.sdc, full.sdc);
  EXPECT_EQ(part1.masked_identical, full.masked_identical);
  EXPECT_EQ(part1.masked_semantic, full.masked_semantic);
}

TEST(CampaignRange, EmptyAndFullRanges) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(1, 6);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  CampaignConfig config;
  config.trials_per_input = 5;
  config.gen_tokens = 6;
  const auto spec = scheme_spec(SchemeKind::kNone, model.config());

  const auto empty = run_campaign_range(model, inputs, spec, BoundStore{},
                                        config, 2, 2);
  EXPECT_EQ(empty.trials, 0u);

  EXPECT_THROW(run_campaign_range(model, inputs, spec, BoundStore{}, config,
                                  0, 99),
               Error);
  EXPECT_THROW(run_campaign_range(model, inputs, spec, BoundStore{}, config,
                                  4, 2),
               Error);
}

TEST(CampaignRange, TraceCarriesGlobalTrialIds) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 7);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  CampaignConfig config;
  config.trials_per_input = 10;
  config.gen_tokens = 6;

  TraceCollector trace;
  run_campaign_range(model, inputs, scheme_spec(SchemeKind::kNone,
                                                model.config()),
                     BoundStore{}, config, 5, 9, trace.callback());
  ASSERT_EQ(trace.size(), 4u);
  for (const auto& r : trace.records()) {
    EXPECT_GE(r.trial, 5u);
    EXPECT_LT(r.trial, 9u);
  }
}

TEST(TraceTally, SdcByLayerAggregates) {
  TraceCollector trace;
  auto cb = trace.callback();
  auto rec = [](LayerKind kind, Outcome outcome) {
    TrialRecord r;
    r.plan.site = {0, kind};
    r.outcome = outcome;
    return r;
  };
  cb(rec(LayerKind::kVProj, Outcome::kSdc));
  cb(rec(LayerKind::kVProj, Outcome::kMaskedIdentical));
  cb(rec(LayerKind::kQProj, Outcome::kMaskedIdentical));

  const auto tally = trace.sdc_by_layer();
  ASSERT_EQ(tally.size(), 2u);
  EXPECT_EQ(tally.at(LayerKind::kVProj).faults, 2u);
  EXPECT_EQ(tally.at(LayerKind::kVProj).sdc, 1u);
  EXPECT_DOUBLE_EQ(tally.at(LayerKind::kVProj).sdc_rate(), 0.5);
  EXPECT_EQ(tally.at(LayerKind::kQProj).sdc, 0u);
  EXPECT_DOUBLE_EQ(tally.at(LayerKind::kQProj).sdc_rate(), 0.0);
}

}  // namespace
}  // namespace ft2
