#include "fi/injector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ft2 {
namespace {

FaultPlan plan_at(int block, LayerKind kind, std::size_t position,
                  std::size_t neuron, int bit) {
  FaultPlan plan;
  plan.site = {block, kind};
  plan.position = position;
  plan.neuron = neuron;
  plan.flips.count = 1;
  plan.flips.bits[0] = bit;
  return plan;
}

HookContext ctx(int block, LayerKind kind, std::size_t position) {
  return HookContext{LayerSite{block, kind}, position, false};
}

TEST(Injector, FiresExactlyOnceAtMatchingSite) {
  InjectorHook hook(plan_at(1, LayerKind::kVProj, 3, 2, 15));
  hook.on_generation_begin();

  std::vector<float> values = {1.0f, 2.0f, 3.0f, 4.0f};
  // Wrong position / wrong site: untouched.
  hook.on_output(ctx(1, LayerKind::kVProj, 2), values);
  hook.on_output(ctx(0, LayerKind::kVProj, 3), values);
  hook.on_output(ctx(1, LayerKind::kQProj, 3), values);
  EXPECT_FALSE(hook.fired());
  EXPECT_EQ(values[2], 3.0f);

  // Match: sign bit of neuron 2 flips.
  hook.on_output(ctx(1, LayerKind::kVProj, 3), values);
  EXPECT_TRUE(hook.fired());
  EXPECT_EQ(values[2], -3.0f);
  EXPECT_EQ(hook.original_value(), 3.0f);
  EXPECT_EQ(hook.injected_value(), -3.0f);

  // Never fires twice (same site at a later dispatch).
  std::vector<float> again = {9.0f, 9.0f, 9.0f, 9.0f};
  hook.on_output(ctx(1, LayerKind::kVProj, 3), again);
  EXPECT_EQ(again[2], 9.0f);
}

TEST(Injector, ResetsOnGenerationBegin) {
  InjectorHook hook(plan_at(0, LayerKind::kFc1, 1, 0, 15));
  std::vector<float> v = {2.0f};
  hook.on_output(ctx(0, LayerKind::kFc1, 1), v);
  EXPECT_TRUE(hook.fired());
  hook.on_generation_begin();
  EXPECT_FALSE(hook.fired());
  std::vector<float> w = {2.0f};
  hook.on_output(ctx(0, LayerKind::kFc1, 1), w);
  EXPECT_EQ(w[0], -2.0f);
}

TEST(Injector, ExponentFlipCreatesExtremeValue) {
  InjectorHook hook(plan_at(0, LayerKind::kFc2, 0, 1, f16::kExponentHigh));
  std::vector<float> v = {0.0f, 0.5f, 0.0f};
  hook.on_output(ctx(0, LayerKind::kFc2, 0), v);
  EXPECT_EQ(v[1], 32768.0f);
}

TEST(Injector, F32PlanFlipsF32Encoding) {
  FaultPlan plan = plan_at(0, LayerKind::kQProj, 0, 0, 31);
  plan.vtype = ValueType::kF32;
  InjectorHook hook(plan);
  std::vector<float> v = {1.0f / 3.0f};  // not representable in FP16
  const float before = v[0];
  hook.on_output(ctx(0, LayerKind::kQProj, 0), v);
  EXPECT_EQ(v[0], -before);  // exact negation, no FP16 rounding applied
}

}  // namespace
}  // namespace ft2
