// Fault-free prefix reuse is a pure throughput knob: campaigns with
// CampaignConfig::prefix_reuse on vs. off must be bit-identical in
// outcomes, per-trial FaultPlans, TrialRecord.detections and protect.*
// counters — across pool sizes and for both decode-phase and prefill-phase
// (first_token_only) fault placements. Also covers the session-level
// snapshot/fork API directly and the clamped-fork (kNotInjected) edge.
#include <gtest/gtest.h>

#include <algorithm>
#include <string_view>
#include <vector>

#include "core/ft2.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model(std::size_t max_seq = 96) {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = max_seq;
  Xoshiro256 rng(47);
  return TransformerLM(c, init_weights(c, rng));
}

bool same_plan(const FaultPlan& a, const FaultPlan& b) {
  return a.position == b.position && a.site == b.site && a.neuron == b.neuron &&
         a.vtype == b.vtype && a.in_first_token == b.in_first_token &&
         a.flips.count == b.flips.count && a.flips.bits == b.flips.bits;
}

std::vector<TrialRecord> sorted_records(std::vector<TrialRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const TrialRecord& a, const TrialRecord& b) {
              return a.trial < b.trial;
            });
  return records;
}

/// One full campaign run captured for comparison: counts, sorted per-trial
/// records, and the metrics snapshot of a run-private registry.
struct CampaignCapture {
  CampaignResult result;
  std::vector<TrialRecord> records;
  MetricsSnapshot metrics;
};

CampaignCapture run_once(const TransformerLM& model,
                         const std::vector<EvalInput>& inputs,
                         const SchemeSpec& spec, CampaignConfig config,
                         bool prefix_reuse, ThreadPool* pool) {
  MetricsRegistry registry;
  config.prefix_reuse = prefix_reuse;
  config.pool = pool;
  config.obs.metrics = &registry;
  CampaignCapture cap;
  std::vector<TrialRecord> trace;
  cap.result =
      run_campaign(model, inputs, spec, BoundStore{}, config,
                   [&](const TrialRecord& r) { trace.push_back(r); });
  cap.records = sorted_records(std::move(trace));
  cap.metrics = registry.snapshot();
  return cap;
}

/// Asserts the reuse-on capture `b` is bit-identical to the reuse-off
/// baseline `a` in everything the fault model can observe.
void expect_identical(const CampaignCapture& a, const CampaignCapture& b,
                      const std::string& label) {
  EXPECT_EQ(a.result.trials, b.result.trials) << label;
  EXPECT_EQ(a.result.masked_identical, b.result.masked_identical) << label;
  EXPECT_EQ(a.result.masked_semantic, b.result.masked_semantic) << label;
  EXPECT_EQ(a.result.sdc, b.result.sdc) << label;
  EXPECT_EQ(a.result.not_injected, b.result.not_injected) << label;

  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t t = 0; t < a.records.size(); ++t) {
    EXPECT_EQ(a.records[t].trial, b.records[t].trial) << label;
    EXPECT_EQ(a.records[t].input_index, b.records[t].input_index) << label;
    EXPECT_EQ(a.records[t].outcome, b.records[t].outcome)
        << label << " trial " << t;
    EXPECT_EQ(a.records[t].detections, b.records[t].detections)
        << label << " trial " << t;
    EXPECT_EQ(a.records[t].generated_text, b.records[t].generated_text)
        << label << " trial " << t;
    EXPECT_TRUE(same_plan(a.records[t].plan, b.records[t].plan))
        << label << " trial " << t;
  }

  // Every protect.* counter advances by exactly the same amount whether the
  // prefix was replayed or restored (both directions: no extra counters on
  // either side).
  for (const auto& c : a.metrics.counters) {
    if (std::string_view(c.name).substr(0, 8) != "protect.") continue;
    EXPECT_EQ(c.value, b.metrics.counter_value(c.name)) << label << " " << c.name;
  }
  for (const auto& c : b.metrics.counters) {
    if (std::string_view(c.name).substr(0, 8) != "protect.") continue;
    EXPECT_EQ(c.value, a.metrics.counter_value(c.name)) << label << " " << c.name;
  }
  // Clip-magnitude histograms replay the same per-bucket populations (sum
  // accumulation order may differ across workers, so only the integer
  // fields are compared bit-exactly).
  for (const auto& h : a.metrics.histograms) {
    if (std::string_view(h.name).substr(0, 8) != "protect.") continue;
    const auto* other = b.metrics.find_histogram(h.name);
    ASSERT_NE(other, nullptr) << label << " " << h.name;
    EXPECT_EQ(h.count, other->count) << label << " " << h.name;
    EXPECT_EQ(h.counts, other->counts) << label << " " << h.name;
    EXPECT_EQ(h.nan_count, other->nan_count) << label << " " << h.name;
    EXPECT_NEAR(h.sum, other->sum, 1e-6 * (1.0 + std::abs(h.sum)))
        << label << " " << h.name;
  }
}

CampaignConfig base_config() {
  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = 12;
  config.gen_tokens = 6;
  config.seed = 3;
  return config;
}

TEST(PrefixReuse, DecodePhaseBitIdenticalAcrossPoolSizes) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(3, 5);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  const auto spec = scheme_spec(SchemeKind::kFt2, model.config());
  const CampaignConfig config = base_config();

  ThreadPool pool1(1), pool2(2), pool8(8);
  const auto off = run_once(model, inputs, spec, config, false, &pool1);
  for (ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    const auto on = run_once(model, inputs, spec, config, true, pool);
    expect_identical(off, on, "pool " + std::to_string(pool->size()));
    // With decode-phase placements most trials fork; the split always
    // accounts for every trial.
    const auto hits = on.metrics.counter_value("campaign.prefix.hit");
    const auto misses = on.metrics.counter_value("campaign.prefix.miss");
    EXPECT_GT(hits, 0u);
    EXPECT_EQ(hits + misses, on.result.trials);
  }
  // Reuse off publishes no prefix counters at all.
  EXPECT_EQ(off.metrics.find_counter("campaign.prefix.hit"), nullptr);
  EXPECT_EQ(off.metrics.find_counter("campaign.prefix.miss"), nullptr);
}

TEST(PrefixReuse, FirstTokenOnlyBitIdenticalAndAlwaysFallsBack) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 13);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  const auto spec = scheme_spec(SchemeKind::kFt2, model.config());
  CampaignConfig config = base_config();
  config.first_token_only = true;  // every fault lands in the prefill

  ThreadPool pool1(1), pool8(8);
  const auto off = run_once(model, inputs, spec, config, false, &pool1);
  for (ThreadPool* pool : {&pool1, &pool8}) {
    const auto on = run_once(model, inputs, spec, config, true, pool);
    expect_identical(off, on, "first-token pool " + std::to_string(pool->size()));
    // Prefill-phase faults can never reuse a fault-free prefix: every
    // trial must take the full-run fallback.
    EXPECT_EQ(on.metrics.counter_value("campaign.prefix.hit"), 0u);
    EXPECT_EQ(on.metrics.counter_value("campaign.prefix.miss"),
              on.result.trials);
  }
}

TEST(PrefixReuse, OtherSchemesAndMultiFaultTrialsStayIdentical) {
  // Offline-bounded scheme (no online state to restore) and two faults per
  // trial (fork position = min over injectors) both ride the same path.
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 21);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  const auto spec = scheme_spec(SchemeKind::kNone, model.config());
  CampaignConfig config = base_config();
  config.fault_model = FaultModel::kSingleBit;
  config.faults_per_trial = 2;

  ThreadPool pool2(2);
  const auto off = run_once(model, inputs, spec, config, false, &pool2);
  const auto on = run_once(model, inputs, spec, config, true, &pool2);
  expect_identical(off, on, "multi-fault");
}

TEST(PrefixReuse, ClampedForksMatchFullRunsWhenDecodeStopsEarly) {
  // max_seq small enough that decode halts before the last planned fault
  // position: those trials are kNotInjected and their forks clamp to the
  // last executed boundary (zero resumed forwards). Must still match the
  // full-run fallback bit for bit.
  const TransformerLM model = micro_model(/*max_seq=*/16);
  auto samples = make_generator(DatasetKind::kSynthQA)->generate_many(1, 9);
  // Pad the prompt so prompt_len + gen_tokens - 1 overshoots max_seq.
  while (samples[0].prompt_tokens.size() < 14) {
    samples[0].prompt_tokens.push_back(samples[0].prompt_tokens.front());
  }
  const auto inputs = prepare_eval_inputs(model, samples, 8, false);
  ASSERT_EQ(inputs.size(), 1u);
  const auto spec = scheme_spec(SchemeKind::kFt2, model.config());
  CampaignConfig config = base_config();
  config.gen_tokens = 8;
  config.trials_per_input = 24;

  ThreadPool pool2(2);
  const auto off = run_once(model, inputs, spec, config, false, &pool2);
  const auto on = run_once(model, inputs, spec, config, true, &pool2);
  expect_identical(off, on, "clamped");
  EXPECT_GT(on.result.not_injected, 0u);  // the edge actually triggered
}

TEST(PrefixReuse, PrepareEvalInputsParallelMatchesSerial) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(6, 17);
  const auto serial = prepare_eval_inputs(model, samples, 6, false);
  ThreadPool pool1(1), pool2(2), pool8(8);
  for (ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    const auto par = prepare_eval_inputs(model, samples, 6, false, pool);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(par[i].prompt, serial[i].prompt) << "input " << i;
      EXPECT_EQ(par[i].reference_tokens, serial[i].reference_tokens)
          << "input " << i;
      EXPECT_EQ(par[i].fault_free_correct, serial[i].fault_free_correct)
          << "input " << i;
    }
  }
}

TEST(PrefixReuse, ResumeReproducesRecordedRunAtEveryBoundary) {
  // Session-level check underneath the campaign: a fork at ANY boundary of
  // the fault-free recording, with the hook state restored, regenerates
  // exactly the recorded suffix and ends with the same protection stats.
  const TransformerLM model = micro_model();
  const auto spec = scheme_spec(SchemeKind::kFt2, model.config());
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(1, 7);
  std::vector<int> prompt = {Vocab::kBos};
  prompt.insert(prompt.end(), samples[0].prompt_tokens.begin(),
                samples[0].prompt_tokens.end());
  GenerateOptions options;
  options.max_new_tokens = 8;
  options.eos_token = -1;

  ProtectionHook rec_hook(model.config(), spec, BoundStore{});
  rec_hook.set_clip_capture(true);
  InferenceSession rec_session(model);
  const HookRegistration rec_reg = rec_session.hooks().add(rec_hook);
  SessionSnapshot snap;
  std::vector<ProtectionState> hook_at;
  const auto recorded = rec_session.generate_recorded(
      prompt, options, snap,
      [&](std::size_t) { hook_at.push_back(rec_hook.capture_state()); });

  // Recording is observationally identical to a plain hooked generate.
  ProtectionHook plain_hook(model.config(), spec, BoundStore{});
  InferenceSession plain_session(model);
  const HookRegistration plain_reg = plain_session.hooks().add(plain_hook);
  const auto plain = plain_session.generate(prompt, options);
  EXPECT_EQ(recorded.tokens, plain.tokens);
  EXPECT_EQ(recorded.positions_run, plain.positions_run);
  const ProtectionStats full = plain_hook.stats();

  ASSERT_TRUE(snap.valid());
  ASSERT_EQ(snap.prompt_len, prompt.size());
  ASSERT_EQ(hook_at.size(), recorded.tokens.size());
  for (std::size_t pos = snap.prompt_len; pos <= snap.last_boundary(); ++pos) {
    ProtectionHook hook(model.config(), spec, BoundStore{});
    InferenceSession session(model);
    const HookRegistration reg = session.hooks().add(hook);
    const auto resumed = session.resume_from(snap, pos, [&] {
      hook.restore_state(hook_at[pos - snap.prompt_len]);
    });
    EXPECT_EQ(resumed.tokens, recorded.tokens) << "fork at " << pos;
    EXPECT_EQ(resumed.positions_run, recorded.positions_run)
        << "fork at " << pos;
    const ProtectionStats got = hook.stats();
    EXPECT_EQ(got.values_checked, full.values_checked) << "fork at " << pos;
    EXPECT_EQ(got.nan_corrected, full.nan_corrected) << "fork at " << pos;
    EXPECT_EQ(got.oob_corrected, full.oob_corrected) << "fork at " << pos;
  }
}

TEST(PrefixReuse, SessionReusableAfterFork) {
  // A session whose cache is in forked mode must transparently recover when
  // asked for a fresh generation (the campaign reuses one session per
  // worker across forked and full trials).
  const TransformerLM model = micro_model();
  InferenceSession session(model);
  GenerateOptions options;
  options.max_new_tokens = 6;
  options.eos_token = -1;
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(1, 3);
  std::vector<int> prompt = {Vocab::kBos};
  prompt.insert(prompt.end(), samples[0].prompt_tokens.begin(),
                samples[0].prompt_tokens.end());

  SessionSnapshot snap;
  const auto recorded = session.generate_recorded(prompt, options, snap);
  const auto forked = session.resume_from(snap, snap.prompt_len + 2);
  EXPECT_EQ(forked.tokens, recorded.tokens);
  const auto fresh = session.generate(prompt, options);  // plain cache again
  EXPECT_EQ(fresh.tokens, recorded.tokens);
}

}  // namespace
}  // namespace ft2
