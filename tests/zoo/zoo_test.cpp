#include "zoo/zoo.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

namespace ft2 {
namespace {

TEST(Zoo, HasSevenModelsInPaperOrder) {
  const auto& zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 7u);
  EXPECT_EQ(zoo[0].paper_name, "OPT-6.7B");
  EXPECT_EQ(zoo[1].paper_name, "OPT-2.7B");
  EXPECT_EQ(zoo[2].paper_name, "GPTJ-6B");
  EXPECT_EQ(zoo[3].paper_name, "Llama2-7B");
  EXPECT_EQ(zoo[4].paper_name, "Vicuna-7B");
  EXPECT_EQ(zoo[5].paper_name, "Qwen2-7B");
  EXPECT_EQ(zoo[6].paper_name, "Qwen2-1.5B");
}

TEST(Zoo, NamesUniqueAndLookupWorks) {
  std::set<std::string> names;
  for (const auto& e : model_zoo()) {
    EXPECT_TRUE(names.insert(e.name).second) << e.name;
    EXPECT_EQ(&zoo_entry(e.name), &e);
  }
  EXPECT_THROW(zoo_entry("gpt-17"), Error);
}

TEST(Zoo, OnlyLlamaAndQwenDoMath) {
  for (const auto& e : model_zoo()) {
    const bool math = e.supports(DatasetKind::kSynthMath);
    const bool expected = e.name == "llama-sm" || e.name == "qwen2-sm";
    EXPECT_EQ(math, expected) << e.name;
    // Everyone does both QA datasets.
    EXPECT_TRUE(e.supports(DatasetKind::kSynthQA)) << e.name;
    EXPECT_TRUE(e.supports(DatasetKind::kSynthXQA)) << e.name;
  }
}

TEST(Zoo, ArchitecturesMatchPaperFamilies) {
  EXPECT_EQ(zoo_entry("opt-sm").config.arch, ArchFamily::kOpt);
  EXPECT_EQ(zoo_entry("opt-xs").config.arch, ArchFamily::kOpt);
  EXPECT_EQ(zoo_entry("gptj-sm").config.arch, ArchFamily::kGptj);
  EXPECT_TRUE(zoo_entry("gptj-sm").config.parallel_block);
  EXPECT_EQ(zoo_entry("llama-sm").config.arch, ArchFamily::kLlama);
  EXPECT_FALSE(zoo_entry("llama-sm").config.qkv_bias);
  EXPECT_TRUE(zoo_entry("qwen2-sm").config.qkv_bias);
  EXPECT_TRUE(zoo_entry("qwen2-xs").config.qkv_bias);
}

TEST(Zoo, SizeOrderingMirrorsPaper) {
  // The -xs models stand in for the smaller paper models.
  auto params = [](const char* name) {
    const auto& e = zoo_entry(name);
    Xoshiro256 rng(e.seed);
    return init_weights(e.config, rng).parameter_count();
  };
  EXPECT_LT(params("opt-xs"), params("opt-sm"));
  EXPECT_LT(params("qwen2-xs"), params("qwen2-sm"));
}

TEST(Zoo, VicunaSharesLlamaArchDifferentSeed) {
  const auto& llama = zoo_entry("llama-sm");
  const auto& vicuna = zoo_entry("vicuna-sm");
  EXPECT_EQ(llama.config.d_model, vicuna.config.d_model);
  EXPECT_EQ(llama.config.d_ff, vicuna.config.d_ff);
  EXPECT_NE(llama.seed, vicuna.seed);
}

TEST(Zoo, GenerationTokensPerTask) {
  EXPECT_GT(generation_tokens(DatasetKind::kSynthMath),
            generation_tokens(DatasetKind::kSynthQA));
  EXPECT_EQ(generation_tokens(DatasetKind::kSynthQA),
            generation_tokens(DatasetKind::kSynthXQA));
}

TEST(Zoo, CacheDirRespectsEnv) {
  ::setenv("FT2_MODEL_DIR", "/tmp/ft2-zoo-test", 1);
  EXPECT_EQ(model_cache_dir(), "/tmp/ft2-zoo-test");
  ::unsetenv("FT2_MODEL_DIR");
  EXPECT_EQ(model_cache_dir(), "models");
}

TEST(Zoo, ConfigsFitVocabAndContext) {
  for (const auto& e : model_zoo()) {
    EXPECT_EQ(e.config.vocab_size, Vocab::shared().size()) << e.name;
    EXPECT_EQ(e.config.d_model % e.config.n_heads, 0u) << e.name;
    EXPECT_EQ(e.config.head_dim() % 2, 0u) << e.name;  // RoPE pairs
    EXPECT_GE(e.config.max_seq, 96u) << e.name;
  }
}

}  // namespace
}  // namespace ft2
