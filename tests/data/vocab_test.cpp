#include "data/vocab.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ft2 {
namespace {

TEST(Vocab, SpecialTokensFirst) {
  const Vocab& v = Vocab::shared();
  EXPECT_EQ(v.word(Vocab::kPad), "<pad>");
  EXPECT_EQ(v.word(Vocab::kBos), "<bos>");
  EXPECT_EQ(v.word(Vocab::kEos), "<eos>");
  EXPECT_EQ(v.word(Vocab::kUnk), "<unk>");
}

TEST(Vocab, NumbersAreAtomicTokens) {
  const Vocab& v = Vocab::shared();
  for (int n = 0; n <= 99; ++n) {
    const int id = v.id(std::to_string(n));
    EXPECT_NE(id, Vocab::kUnk) << n;
    EXPECT_EQ(v.word(id), std::to_string(n));
  }
}

TEST(Vocab, EncodeDecodeRoundTrip) {
  const Vocab& v = Vocab::shared();
  const std::string text = "alice lives in paris .";
  const auto tokens = v.encode(text);
  EXPECT_EQ(tokens.size(), 5u);
  EXPECT_EQ(v.decode(tokens), text);
}

TEST(Vocab, UnknownWordsMapToUnk) {
  const Vocab& v = Vocab::shared();
  const auto tokens = v.encode("alice flibbertigibbet paris");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_NE(tokens[0], Vocab::kUnk);
  EXPECT_EQ(tokens[1], Vocab::kUnk);
  EXPECT_NE(tokens[2], Vocab::kUnk);
}

TEST(Vocab, DecodeSkipsSpecials) {
  const Vocab& v = Vocab::shared();
  const std::vector<int> tokens = {Vocab::kBos, v.id("paris"), Vocab::kEos,
                                   Vocab::kPad};
  EXPECT_EQ(v.decode(tokens), "paris");
}

TEST(Vocab, WordOutOfRangeThrows) {
  const Vocab& v = Vocab::shared();
  EXPECT_THROW(v.word(-1), Error);
  EXPECT_THROW(v.word(static_cast<int>(v.size())), Error);
}

TEST(Vocab, SizeIsStableAndCompact) {
  const Vocab& v = Vocab::shared();
  EXPECT_GT(v.size(), 200u);
  EXPECT_LT(v.size(), 400u);
}

TEST(Vocab, ContainsBothSurfaceLanguages) {
  const Vocab& v = Vocab::shared();
  for (const char* w : {"question", "answer", "lives", "demande", "reponse",
                        "habite", "combien"}) {
    EXPECT_TRUE(v.contains(w)) << w;
  }
}

}  // namespace
}  // namespace ft2
