#include "data/matcher.hpp"

#include <gtest/gtest.h>

namespace ft2 {
namespace {

TEST(Matcher, NormalizeCollapsesWhitespaceAndCase) {
  EXPECT_EQ(normalize_text("  Hello   World \n"), "hello world");
  EXPECT_EQ(normalize_text(""), "");
  EXPECT_EQ(normalize_text("A"), "a");
}

TEST(Matcher, ContainsExactWord) {
  EXPECT_TRUE(contains_reference("bob lives in paris", "paris"));
  EXPECT_TRUE(contains_reference("Paris", "paris"));
  EXPECT_FALSE(contains_reference("bob lives in london", "paris"));
}

TEST(Matcher, PaperExampleSemanticEquivalence) {
  // "The number of people is 5" is Masked vs reference "5";
  // "There are 4 people" is SDC vs reference "5".
  EXPECT_TRUE(contains_reference("the number of people is 5", "5"));
  EXPECT_FALSE(contains_reference("there are 4 people", "5"));
}

TEST(Matcher, MultiWordReferenceMustBeContiguous) {
  EXPECT_TRUE(contains_reference("i think bob lives in paris now",
                                 "lives in paris"));
  EXPECT_FALSE(contains_reference("bob lives near paris", "lives in paris"));
  EXPECT_FALSE(
      contains_reference("lives bob in crazy paris", "lives in paris"));
}

TEST(Matcher, WordBoundariesRespected) {
  // "7" must not match inside "17".
  EXPECT_FALSE(contains_reference("bob has 17 coins", "7"));
  EXPECT_TRUE(contains_reference("bob has 7 coins", "7"));
}

TEST(Matcher, EmptyInputs) {
  EXPECT_FALSE(contains_reference("anything", ""));
  EXPECT_FALSE(contains_reference("", "paris"));
  EXPECT_FALSE(contains_reference("", ""));
}

TEST(Matcher, TokenLevelContainment) {
  EXPECT_TRUE(contains_reference_tokens({5, 9, 2, 7}, {9, 2}));
  EXPECT_TRUE(contains_reference_tokens({5, 9, 2}, {5, 9, 2}));
  EXPECT_FALSE(contains_reference_tokens({5, 9, 2}, {9, 5}));
  EXPECT_FALSE(contains_reference_tokens({5}, {5, 9}));
  EXPECT_FALSE(contains_reference_tokens({5, 9}, {}));
}

}  // namespace
}  // namespace ft2
