#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/check.hpp"
#include "data/matcher.hpp"

namespace ft2 {
namespace {

class DatasetTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(DatasetTest, GenerationIsDeterministic) {
  const auto gen = make_generator(GetParam());
  const auto a = gen->generate_many(20, 77);
  const auto b = gen->generate_many(20, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].prompt_text, b[i].prompt_text);
    EXPECT_EQ(a[i].reference, b[i].reference);
  }
}

TEST_P(DatasetTest, DifferentSeedsDiffer) {
  const auto gen = make_generator(GetParam());
  const auto a = gen->generate_many(10, 1);
  const auto b = gen->generate_many(10, 2);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].prompt_text == b[i].prompt_text) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST_P(DatasetTest, NoOovTokensAnywhere) {
  const auto gen = make_generator(GetParam());
  for (const auto& s : gen->generate_many(100, 5)) {
    for (int t : s.prompt_tokens) EXPECT_NE(t, Vocab::kUnk);
    for (int t : s.target_tokens) EXPECT_NE(t, Vocab::kUnk);
  }
}

TEST_P(DatasetTest, TargetEndsWithEosAndContainsReference) {
  const auto gen = make_generator(GetParam());
  for (const auto& s : gen->generate_many(50, 9)) {
    ASSERT_FALSE(s.target_tokens.empty());
    EXPECT_EQ(s.target_tokens.back(), Vocab::kEos);
    EXPECT_TRUE(contains_reference(s.target_text, s.reference))
        << s.target_text << " | " << s.reference;
  }
}

TEST_P(DatasetTest, AnswerIsNotTheFirstTargetToken) {
  // The decisive answer token must come after the first generated token,
  // otherwise "following tokens" faults could never cause SDCs.
  const auto gen = make_generator(GetParam());
  const Vocab& v = Vocab::shared();
  for (const auto& s : gen->generate_many(50, 10)) {
    const auto ref_tokens = v.encode(s.reference);
    ASSERT_FALSE(ref_tokens.empty());
    EXPECT_NE(s.target_tokens[0], ref_tokens[0]) << s.target_text;
  }
}

TEST_P(DatasetTest, PromptFitsModelContext) {
  const auto gen = make_generator(GetParam());
  for (const auto& s : gen->generate_many(100, 11)) {
    EXPECT_LT(s.prompt_tokens.size() + 24, 96u) << s.prompt_text;
    EXPECT_GT(s.prompt_tokens.size(), 8u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetTest,
                         ::testing::Values(DatasetKind::kSynthQA,
                                           DatasetKind::kSynthXQA,
                                           DatasetKind::kSynthMath),
                         [](const auto& info) {
                           return std::string(dataset_name(info.param));
                         });

TEST(Dataset, QaAnswerIsInContext) {
  const auto gen = make_generator(DatasetKind::kSynthQA);
  for (const auto& s : gen->generate_many(50, 13)) {
    EXPECT_TRUE(contains_reference(s.prompt_text, s.reference))
        << s.prompt_text << " | " << s.reference;
  }
}

TEST(Dataset, MathAnswerIsArithmeticallyConsistent) {
  // Recompute the expected value by parsing the prompt.
  const auto gen = make_generator(DatasetKind::kSynthMath);
  for (const auto& s : gen->generate_many(100, 17)) {
    std::istringstream is(s.prompt_text);
    std::string w;
    long value = -1;
    long running = -1;
    while (is >> w) {
      if (w == "has" || w == "buys" || w == "finds" || w == "loses" ||
          w == "away") {
        std::string num;
        if (w == "away") {
          // "gives away N": number follows.
        }
        is >> num;
        const long n = std::strtol(num.c_str(), nullptr, 10);
        if (w == "has" && running < 0) {
          running = n;
        } else if (w == "buys" || w == "finds") {
          running += n;
        } else if (w == "loses" || w == "away") {
          running -= n;
        }
      }
    }
    value = std::strtol(s.reference.c_str(), nullptr, 10);
    EXPECT_EQ(running, value) << s.prompt_text;
    EXPECT_GE(value, 0);
    EXPECT_LE(value, 29);
  }
}

TEST(Dataset, SurfaceLanguagesAreDisjointInTemplates) {
  const auto qa = make_generator(DatasetKind::kSynthQA)->generate_many(20, 3);
  const auto xqa =
      make_generator(DatasetKind::kSynthXQA)->generate_many(20, 3);
  for (const auto& s : qa) {
    EXPECT_EQ(s.prompt_text.find("demande"), std::string::npos);
    EXPECT_NE(s.prompt_text.find("question"), std::string::npos);
  }
  for (const auto& s : xqa) {
    EXPECT_EQ(s.prompt_text.find("question"), std::string::npos);
    EXPECT_NE(s.prompt_text.find("demande"), std::string::npos);
  }
}

TEST(Dataset, NamesAndKinds) {
  EXPECT_STREQ(dataset_name(DatasetKind::kSynthQA), "synthqa");
  EXPECT_STREQ(dataset_name(DatasetKind::kSynthMath), "synthmath");
  EXPECT_TRUE(is_math_dataset(DatasetKind::kSynthMath));
  EXPECT_FALSE(is_math_dataset(DatasetKind::kSynthXQA));
  EXPECT_EQ(all_datasets().size(), 3u);
}

}  // namespace
}  // namespace ft2
