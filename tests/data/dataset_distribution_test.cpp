// Distributional properties of the synthetic dataset generators: the
// statistical fault-injection results are only meaningful if the task
// generators actually produce the variety they promise.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/dataset.hpp"
#include "data/matcher.hpp"

namespace ft2 {
namespace {

TEST(DatasetDistribution, QaCoversAllThreeQuestionTypes) {
  const auto gen = make_generator(DatasetKind::kSynthQA);
  std::size_t where = 0, how_many = 0, what = 0;
  for (const auto& s : gen->generate_many(300, 21)) {
    if (s.prompt_text.find("where does") != std::string::npos) ++where;
    if (s.prompt_text.find("how many") != std::string::npos) ++how_many;
    if (s.prompt_text.find("what does") != std::string::npos) ++what;
  }
  EXPECT_EQ(where + how_many + what, 300u);
  // Each type at ~1/3; allow wide tolerance.
  for (std::size_t n : {where, how_many, what}) {
    EXPECT_GT(n, 60u);
    EXPECT_LT(n, 140u);
  }
}

TEST(DatasetDistribution, MathMixesSingleAndTwoStepProblems) {
  const auto gen = make_generator(DatasetKind::kSynthMath);
  std::size_t ops_total = 0;
  std::size_t two_step = 0;
  const auto samples = gen->generate_many(300, 22);
  for (const auto& s : samples) {
    std::size_t ops = 0;
    for (const char* op : {" buys ", " finds ", " loses ", " gives away "}) {
      std::string::size_type pos = 0;
      while ((pos = s.prompt_text.find(op, pos)) != std::string::npos) {
        ++ops;
        pos += 1;
      }
    }
    EXPECT_GE(ops, 1u) << s.prompt_text;
    EXPECT_LE(ops, 2u) << s.prompt_text;
    ops_total += ops;
    if (ops == 2) ++two_step;
  }
  // ~50% two-step problems.
  EXPECT_GT(two_step, 100u);
  EXPECT_LT(two_step, 200u);
  EXPECT_GT(ops_total, 300u);
}

TEST(DatasetDistribution, EntityPoolsAreExercised) {
  const auto gen = make_generator(DatasetKind::kSynthQA);
  std::set<std::string> references;
  for (const auto& s : gen->generate_many(400, 23)) {
    references.insert(s.reference);
  }
  // Cities (16) + hobbies (8) + many counts: variety must be substantial.
  EXPECT_GT(references.size(), 30u);
}

TEST(DatasetDistribution, AnswersNeverLeakIntoMathPromptTail) {
  // The math question ends with "answer :" and must not contain the result
  // after the last operation sentence (the model must compute, not copy).
  const auto gen = make_generator(DatasetKind::kSynthMath);
  std::size_t computed_differs = 0;
  for (const auto& s : gen->generate_many(200, 24)) {
    // Find the initial count ("has N"): if the final answer differs, the
    // model genuinely had to apply the operations.
    const auto pos = s.prompt_text.find(" has ");
    ASSERT_NE(pos, std::string::npos);
    const std::string initial =
        s.prompt_text.substr(pos + 5, s.prompt_text.find(' ', pos + 5) -
                                          (pos + 5));
    if (initial != s.reference) ++computed_differs;
  }
  EXPECT_GT(computed_differs, 150u);  // ops are non-zero deltas, ~always
}

TEST(DatasetDistribution, PromptLengthsAreStable) {
  for (DatasetKind kind : all_datasets()) {
    const auto gen = make_generator(kind);
    std::size_t lo = 1000, hi = 0;
    for (const auto& s : gen->generate_many(100, 25)) {
      lo = std::min(lo, s.prompt_tokens.size());
      hi = std::max(hi, s.prompt_tokens.size());
    }
    EXPECT_GT(lo, 10u) << dataset_name(kind);
    EXPECT_LT(hi, 40u) << dataset_name(kind);
  }
}

TEST(DatasetDistribution, XqaSharesEntitiesWithQa) {
  // The XTREME stand-in shares entity tokens (cities etc.) with SynthQA —
  // only the surface templates differ — so models trained on both learn a
  // shared entity space (mirrors cross-lingual transfer).
  const auto qa = make_generator(DatasetKind::kSynthQA)->generate_many(100, 1);
  const auto xqa =
      make_generator(DatasetKind::kSynthXQA)->generate_many(100, 1);
  std::set<std::string> qa_refs, xqa_refs;
  for (const auto& s : qa) qa_refs.insert(s.reference);
  for (const auto& s : xqa) xqa_refs.insert(s.reference);
  std::size_t shared = 0;
  for (const auto& r : qa_refs) shared += xqa_refs.count(r);
  EXPECT_GT(shared, 10u);
}

}  // namespace
}  // namespace ft2
