// Runtime-dispatch tier equivalence (tensor/dispatch.hpp).
//
// The bit-exactness policy says every kernel tier — SSE reference, AVX2,
// AVX-512 — produces bit-identical GEMM results, quantization grids and
// fused-epilogue outcomes. These tests pin that promise on whatever tiers
// the host supports; tiers the host cannot run are skipped with a reason
// (the per-tier TESTs exist so a skip is visible in ctest output rather
// than silently shrinking a loop).
#include "tensor/dispatch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "numeric/f16.hpp"
#include "protect/range_restriction.hpp"
#include "tensor/ops.hpp"

namespace ft2 {
namespace {

/// Restores the active tier and the fused-epilogue switch on scope exit so
/// a failing test cannot leak a forced tier into the rest of the suite.
class TierGuard {
 public:
  TierGuard() : tier_(active_kernel_tier()), fused_(fused_epilogue_enabled()) {}
  ~TierGuard() {
    set_kernel_tier(tier_);
    set_fused_epilogue_enabled(fused_);
  }

 private:
  KernelTier tier_;
  bool fused_;
};

void fill_uniform(std::span<float> v, Xoshiro256& rng, float lo, float hi) {
  for (float& f : v) f = rng.uniform_float(lo, hi);
}

/// The documented accumulation chain: acc += x[i] * w[o][i], ascending i,
/// separate mul and add. Every tier must reproduce this bit for bit.
void gemm_scalar_ref(const Tensor& x, std::size_t rows, const Tensor& w,
                     std::span<const float> bias, Tensor& y) {
  const std::size_t n = w.dim(0), k = w.dim(1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t o = 0; o < n; ++o) {
      float acc = bias.empty() ? 0.0f : bias[o];
      const float* xr = x.row(r).data();
      const float* wr = w.row(o).data();
      for (std::size_t i = 0; i < k; ++i) acc += xr[i] * wr[i];
      y.row(r)[o] = acc;
    }
  }
}

/// Runs the span + packed GEMM paths on `tier` over shapes that exercise
/// full tiles and tail tiles on every tier width, demanding bit-equality
/// with the scalar reference.
void expect_tier_gemm_bit_exact(KernelTier tier) {
  TierGuard guard;
  set_kernel_tier(tier);
  ThreadPool pool(2);
  Xoshiro256 rng(42);
  const struct {
    std::size_t n, k;
  } shapes[] = {{48, 33}, {64, 64}, {100, 17}, {257, 96}};
  for (const auto& shape : shapes) {
    for (std::size_t rows : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
      Tensor x({rows, shape.k}), w({shape.n, shape.k});
      Tensor y({rows, shape.n}), y_ref({rows, shape.n});
      std::vector<float> bias(shape.n);
      fill_uniform(x.span(), rng, -2.0f, 2.0f);
      fill_uniform(w.span(), rng, -1.0f, 1.0f);
      fill_uniform(bias, rng, -0.5f, 0.5f);
      gemm_scalar_ref(x, rows, w, bias, y_ref);

      linear_forward_span(x, rows, w, bias, y, /*chunked_accum=*/false, pool);
      for (std::size_t i = 0; i < y_ref.numel(); ++i) {
        ASSERT_EQ(f32_bits(y[i]), f32_bits(y_ref[i]))
            << kernel_tier_name(tier) << " span mismatch at " << i << " (n="
            << shape.n << " k=" << shape.k << " rows=" << rows << ")";
      }

      // Packed path: tiles snapshot the active tier at pack time.
      PackedLinear pl(w, bias);
      ASSERT_EQ(pl.ops->tier, tier);
      Tensor y_packed({rows, shape.n});
      linear_forward_span_packed(x, rows, pl, y_packed, pool);
      for (std::size_t i = 0; i < y_ref.numel(); ++i) {
        ASSERT_EQ(f32_bits(y_packed[i]), f32_bits(y_ref[i]))
            << kernel_tier_name(tier) << " packed mismatch at " << i;
      }
    }
  }
}

/// Demands the dispatched quantize sweep matches the scalar quantize_f16
/// bit for bit: all 65536 f16-exact values, denormals, infinities, NaN
/// payloads, overflow/rounding boundaries and random bit patterns.
void expect_tier_quantize_bit_exact(KernelTier tier) {
  TierGuard guard;
  set_kernel_tier(tier);
  std::vector<float> v;
  v.reserve((1u << 16) + 4200);
  for (std::uint32_t h = 0; h < (1u << 16); ++h) {
    v.push_back(f16::from_bits(static_cast<std::uint16_t>(h)).to_float());
  }
  const float specials[] = {
      65504.0f,  65519.9f,  65520.0f,  -65520.0f,  // overflow boundary
      1e30f,     -1e30f,                            // far overflow
      5.9e-8f,   -5.9e-8f,  1e-10f,    -1e-10f,     // denormal / underflow
      1.0009765f, 1.0009766f,                       // RNE tie region
      0.0f,      -0.0f,
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
  };
  v.insert(v.end(), std::begin(specials), std::end(specials));
  v.push_back(f32_from_bits(0x7FC01234u));  // quiet NaN, nonzero payload
  v.push_back(f32_from_bits(0xFFC00000u));  // negative quiet NaN
  v.push_back(f32_from_bits(0x7F800001u));  // signalling NaN
  v.push_back(f32_from_bits(0xFF800001u));
  Xoshiro256 rng(7);
  for (int i = 0; i < 4096; ++i) {
    v.push_back(f32_from_bits(static_cast<std::uint32_t>(rng())));
  }
  std::vector<float> expect = v;
  for (float& f : expect) f = quantize_f16(f);
  quantize_span_f16(v);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(f32_bits(v[i]), f32_bits(expect[i]))
        << kernel_tier_name(tier) << " quantize mismatch at " << i
        << ": in-bits neither matches scalar grid";
  }
}

#define FT2_REQUIRE_TIER(tier)                                         \
  if (!kernel_tier_supported(tier)) {                                  \
    GTEST_SKIP() << "tier '" << kernel_tier_name(tier)                 \
                 << "' not supported on this host ("                   \
                 << (kernel_tier_compiled(tier) ? "CPU lacks the feature" \
                                                : "not compiled in")   \
                 << ")";                                               \
  }

TEST(KernelTierEquivalence, SseGemmMatchesScalarReference) {
  expect_tier_gemm_bit_exact(KernelTier::kSse);
}

TEST(KernelTierEquivalence, Avx2GemmMatchesScalarReference) {
  FT2_REQUIRE_TIER(KernelTier::kAvx2);
  expect_tier_gemm_bit_exact(KernelTier::kAvx2);
}

TEST(KernelTierEquivalence, Avx512GemmMatchesScalarReference) {
  FT2_REQUIRE_TIER(KernelTier::kAvx512);
  expect_tier_gemm_bit_exact(KernelTier::kAvx512);
}

TEST(KernelTierEquivalence, SseQuantizeMatchesScalar) {
  expect_tier_quantize_bit_exact(KernelTier::kSse);
}

TEST(KernelTierEquivalence, Avx2QuantizeMatchesScalar) {
  FT2_REQUIRE_TIER(KernelTier::kAvx2);
  expect_tier_quantize_bit_exact(KernelTier::kAvx2);
}

TEST(KernelTierEquivalence, Avx512QuantizeMatchesScalar) {
  FT2_REQUIRE_TIER(KernelTier::kAvx512);
  expect_tier_quantize_bit_exact(KernelTier::kAvx512);
}

// --- Fused epilogue vs the hook path ---------------------------------------

/// Collects (index, original) pairs exactly as the epilogue's event stream
/// does, for comparison against EpilogueTally::events.
class RecordingObserver final : public ClipObserver {
 public:
  void on_oob(float original, std::size_t index) override {
    events.push_back({index, original});
  }
  std::vector<EpilogueEvent> events;
};

/// One adversarial input span: NaNs, infinities, values straddling the
/// bounds, and clean values, with f16-rounding sensitive magnitudes.
std::vector<float> adversarial_span(std::size_t n, Xoshiro256& rng) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng() % 8) {
      case 0: v[i] = std::numeric_limits<float>::quiet_NaN(); break;
      case 1: v[i] = std::numeric_limits<float>::infinity(); break;
      case 2: v[i] = -std::numeric_limits<float>::infinity(); break;
      case 3: v[i] = rng.uniform_float(1.9f, 2.2f); break;   // near +bound
      case 4: v[i] = rng.uniform_float(-2.2f, -1.9f); break; // near -bound
      default: v[i] = rng.uniform_float(-1.5f, 1.5f); break;
    }
  }
  return v;
}

/// For every tier and every epilogue mode the planner can emit, the
/// epilogue_span must reproduce quantize_span_f16 + range_restrict exactly:
/// values (bitwise), counts, and the per-event (index, original) stream.
TEST(KernelTierEquivalence, EpilogueMatchesQuantizePlusRangeRestrict) {
  TierGuard guard;
  Xoshiro256 rng(11);
  const Bounds bounds{-2.0f, 2.0f, 0.25f};
  for (KernelTier tier : supported_kernel_tiers()) {
    set_kernel_tier(tier);
    for (bool quantize : {false, true}) {
      for (ClipPolicy policy :
           {ClipPolicy::kToBound, ClipPolicy::kToZero, ClipPolicy::kToTypical}) {
        for (bool detect_only : {false, true}) {
          for (bool correct_nan : {false, true}) {
            const std::vector<float> input = adversarial_span(301, rng);

            // Hook path: quantize sweep (scalar) then range_restrict.
            std::vector<float> expect = input;
            if (quantize) {
              for (float& f : expect) f = quantize_f16(f);
            }
            ProtectionStats ref_stats;
            RecordingObserver ref_events;
            range_restrict(expect, bounds, policy, correct_nan, &ref_stats,
                           detect_only, &ref_events);

            // Fused path: one epilogue_span sweep on the dispatched tier.
            KernelEpilogue epi;
            epi.quantize = quantize;
            epi.protect = KernelEpilogue::Protect::kBounds;
            epi.correct_nan = correct_nan;
            epi.detect_only = detect_only;
            epi.lo = bounds.lo;
            epi.hi = bounds.hi;
            switch (policy) {
              case ClipPolicy::kToBound:
                epi.lo_sub = bounds.lo;
                epi.hi_sub = bounds.hi;
                break;
              case ClipPolicy::kToZero:
                epi.lo_sub = epi.hi_sub = 0.0f;
                break;
              case ClipPolicy::kToTypical:
                epi.lo_sub = epi.hi_sub = bounds.typical;
                break;
            }
            epi.record_events = true;
            std::vector<float> fused = input;
            EpilogueTally tally;
            active_kernel_ops().epilogue_span(fused.data(), fused.size(),
                                              /*flat0=*/0, epi, &tally);

            for (std::size_t i = 0; i < fused.size(); ++i) {
              ASSERT_EQ(f32_bits(fused[i]), f32_bits(expect[i]))
                  << kernel_tier_name(tier) << " value " << i << " policy="
                  << static_cast<int>(policy) << " detect_only=" << detect_only
                  << " correct_nan=" << correct_nan << " q=" << quantize;
            }
            EXPECT_EQ(tally.nan, ref_stats.nan_corrected);
            EXPECT_EQ(tally.oob, ref_stats.oob_corrected);
            ASSERT_EQ(tally.events.size(), ref_events.events.size());
            for (std::size_t e = 0; e < tally.events.size(); ++e) {
              EXPECT_EQ(tally.events[e].index, ref_events.events[e].index);
              EXPECT_EQ(f32_bits(tally.events[e].original),
                        f32_bits(ref_events.events[e].original));
            }
          }
        }
      }
    }
  }
}

/// kNanOnly mirrors range_restrict with invalid bounds (NaN-only pass);
/// kFirstToken corrects NaN even in detect_only (the scheme's first-token
/// branch ignores the detector flag).
TEST(KernelTierEquivalence, NanOnlyAndFirstTokenModes) {
  TierGuard guard;
  Xoshiro256 rng(13);
  for (KernelTier tier : supported_kernel_tiers()) {
    set_kernel_tier(tier);
    const std::vector<float> input = adversarial_span(97, rng);

    {
      std::vector<float> expect = input;
      ProtectionStats ref_stats;
      range_restrict(expect, Bounds{}, ClipPolicy::kToBound,
                     /*correct_nan=*/true, &ref_stats, /*detect_only=*/false);
      KernelEpilogue epi;
      epi.protect = KernelEpilogue::Protect::kNanOnly;
      std::vector<float> fused = input;
      EpilogueTally tally;
      active_kernel_ops().epilogue_span(fused.data(), fused.size(), 0, epi,
                                        &tally);
      for (std::size_t i = 0; i < fused.size(); ++i) {
        ASSERT_EQ(f32_bits(fused[i]), f32_bits(expect[i]));
      }
      EXPECT_EQ(tally.nan, ref_stats.nan_corrected);
      EXPECT_EQ(tally.oob, 0u);
    }

    {
      std::vector<float> expect = input;
      const std::size_t nan_count = correct_nan_to_zero(expect);
      KernelEpilogue epi;
      epi.protect = KernelEpilogue::Protect::kFirstToken;
      epi.detect_only = true;  // must be ignored in first-token mode
      std::vector<float> fused = input;
      EpilogueTally tally;
      active_kernel_ops().epilogue_span(fused.data(), fused.size(), 0, epi,
                                        &tally);
      for (std::size_t i = 0; i < fused.size(); ++i) {
        ASSERT_EQ(f32_bits(fused[i]), f32_bits(expect[i]));
      }
      EXPECT_EQ(tally.nan, nan_count);
    }
  }
}

/// The fused GEMM path (epilogue applied at tile store) must equal the
/// two-pass path (plain GEMM, then one epilogue sweep over the output),
/// including the sorted event stream's flat indices.
TEST(KernelTierEquivalence, FusedGemmMatchesTwoPass) {
  TierGuard guard;
  ThreadPool pool(2);
  Xoshiro256 rng(29);
  for (KernelTier tier : supported_kernel_tiers()) {
    set_kernel_tier(tier);
    const std::size_t rows = 3, n = 100, k = 33;
    Tensor x({rows, k}), w({n, k});
    fill_uniform(x.span(), rng, -2.0f, 2.0f);
    fill_uniform(w.span(), rng, -1.0f, 1.0f);
    std::vector<float> bias(n);
    fill_uniform(bias, rng, -0.5f, 0.5f);
    // Plant NaN-producing rows: a huge weight makes |acc| overflow the
    // bound; two opposing infinities are not constructible here, so NaN
    // coverage for the GEMM path comes from an inf - inf accumulation.
    w.at(7, 0) = 1e38f;
    w.at(7, 1) = -1e38f;
    x.at(1, 0) = 1e38f;  // inf * w + (-inf) * w -> NaN in row 1, col 7
    x.at(1, 1) = 1e38f;
    w.at(23, 0) = 50.0f;  // comfortably out of bound

    KernelEpilogue epi;
    epi.quantize = true;
    epi.protect = KernelEpilogue::Protect::kBounds;
    epi.correct_nan = true;
    epi.lo = -4.0f;
    epi.hi = 4.0f;
    epi.lo_sub = -4.0f;
    epi.hi_sub = 4.0f;
    epi.record_events = true;

    Tensor y_ref({rows, n});
    linear_forward_span(x, rows, w, bias, y_ref, false, pool);
    EpilogueTally ref_tally;
    active_kernel_ops().epilogue_span(y_ref.data(), rows * n, 0, epi,
                                      &ref_tally);

    Tensor y({rows, n});
    EpilogueTally tally;
    linear_forward_span(x, rows, w, bias, y, false, pool, &epi, &tally);

    for (std::size_t i = 0; i < rows * n; ++i) {
      ASSERT_EQ(f32_bits(y[i]), f32_bits(y_ref[i]))
          << kernel_tier_name(tier) << " fused GEMM value " << i;
    }
    EXPECT_GE(tally.nan + tally.oob, 1u) << "test inputs must trip the epilogue";
    EXPECT_EQ(tally.nan, ref_tally.nan);
    EXPECT_EQ(tally.oob, ref_tally.oob);
    ASSERT_EQ(tally.events.size(), ref_tally.events.size());
    for (std::size_t e = 0; e < tally.events.size(); ++e) {
      EXPECT_EQ(tally.events[e].index, ref_tally.events[e].index);
      EXPECT_EQ(f32_bits(tally.events[e].original),
                f32_bits(ref_tally.events[e].original));
    }
  }
}

// --- Dispatch plumbing ------------------------------------------------------

TEST(KernelDispatch, TierNamesRoundTrip) {
  EXPECT_EQ(parse_kernel_tier("sse"), KernelTier::kSse);
  EXPECT_EQ(parse_kernel_tier("avx2"), KernelTier::kAvx2);
  EXPECT_EQ(parse_kernel_tier("avx512"), KernelTier::kAvx512);
  EXPECT_FALSE(parse_kernel_tier("avx1024").has_value());
  for (KernelTier t : supported_kernel_tiers()) {
    EXPECT_EQ(parse_kernel_tier(kernel_tier_name(t)), t);
  }
}

TEST(KernelDispatch, SseAlwaysSupported) {
  EXPECT_TRUE(kernel_tier_compiled(KernelTier::kSse));
  EXPECT_TRUE(kernel_tier_supported(KernelTier::kSse));
  EXPECT_FALSE(supported_kernel_tiers().empty());
}

TEST(KernelDispatch, SetTierNameSwitchesAndAutoRestores) {
  TierGuard guard;
  set_kernel_tier_name("sse");
  EXPECT_EQ(active_kernel_tier(), KernelTier::kSse);
  EXPECT_EQ(active_kernel_ops().tile_cols, 16u);
  set_kernel_tier_name("auto");
  // auto re-probes to the widest supported tier.
  EXPECT_EQ(active_kernel_tier(), supported_kernel_tiers().back());
  EXPECT_THROW(set_kernel_tier_name("bogus"), Error);
}

TEST(KernelDispatch, PackedLinearSnapshotsTierAtPackTime) {
  TierGuard guard;
  Tensor w({20, 8});
  Xoshiro256 rng(5);
  fill_uniform(w.span(), rng, -1.0f, 1.0f);
  set_kernel_tier_name("sse");
  PackedLinear pl(w, {});
  EXPECT_EQ(pl.ops->tier, KernelTier::kSse);
  EXPECT_EQ(pl.tile_cols, 16u);
  // Switching tiers afterwards does not mutate existing packs.
  set_kernel_tier_name("auto");
  EXPECT_EQ(pl.ops->tier, KernelTier::kSse);
}

TEST(KernelDispatch, FusedEpilogueToggle) {
  TierGuard guard;
  set_fused_epilogue_enabled(false);
  EXPECT_FALSE(fused_epilogue_enabled());
  set_fused_epilogue_enabled(true);
  EXPECT_TRUE(fused_epilogue_enabled());
}

TEST(KernelDispatch, TallyMergeAndSort) {
  EpilogueTally a, b;
  a.nan = 1;
  a.oob = 2;
  a.events = {{10, 1.0f}, {30, 3.0f}};
  b.nan = 4;
  b.oob = 8;
  b.events = {{20, 2.0f}};
  a.merge(std::move(b));
  a.sort_events();
  EXPECT_EQ(a.nan, 5u);
  EXPECT_EQ(a.oob, 10u);
  ASSERT_EQ(a.events.size(), 3u);
  EXPECT_EQ(a.events[0].index, 10u);
  EXPECT_EQ(a.events[1].index, 20u);
  EXPECT_EQ(a.events[2].index, 30u);
}

}  // namespace
}  // namespace ft2
