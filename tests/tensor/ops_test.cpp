#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "numeric/f16.hpp"

namespace ft2 {
namespace {

TEST(Ops, LinearForwardMatchesNaive) {
  Xoshiro256 rng(1);
  Tensor x({3, 5}), w({4, 5});
  for (float& f : x.span()) f = rng.uniform_float(-1.0f, 1.0f);
  for (float& f : w.span()) f = rng.uniform_float(-1.0f, 1.0f);
  std::vector<float> bias = {0.1f, -0.2f, 0.3f, 0.0f};

  Tensor y;
  linear_forward(x, w, bias, y);
  ASSERT_EQ(y.dim(0), 3u);
  ASSERT_EQ(y.dim(1), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t o = 0; o < 4; ++o) {
      float expect = bias[o];
      for (std::size_t i = 0; i < 5; ++i) expect += x.at(r, i) * w.at(o, i);
      EXPECT_NEAR(y.at(r, o), expect, 1e-5f);
    }
  }
}

TEST(Ops, LinearShapeMismatchThrows) {
  Tensor x({2, 3}), w({4, 5}), y;
  EXPECT_THROW(linear_forward(x, w, {}, y), Error);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Xoshiro256 rng(2);
  Tensor t({4, 7});
  for (float& f : t.span()) f = rng.uniform_float(-5.0f, 5.0f);
  softmax_rows(t.data(), 4, 7);
  for (std::size_t r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (float f : t.row(r)) {
      EXPECT_GE(f, 0.0f);
      sum += f;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  std::vector<float> b = {1001.0f, 1002.0f, 1003.0f};
  softmax(a);
  softmax(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-6f);

  std::vector<float> huge = {1e30f, -1e30f};
  softmax(huge);
  EXPECT_NEAR(huge[0], 1.0f, 1e-6f);
  EXPECT_NEAR(huge[1], 0.0f, 1e-6f);
}

TEST(Ops, SoftmaxPropagatesNan) {
  std::vector<float> v = {1.0f, std::nanf(""), 2.0f};
  softmax(v);
  // NaN contaminates the max/sum: outputs are not a valid distribution.
  bool any_nan = false;
  for (float f : v) any_nan |= std::isnan(f);
  EXPECT_TRUE(any_nan);
}

TEST(Ops, LayerNormNormalizesRows) {
  Xoshiro256 rng(3);
  Tensor x({2, 16}), y;
  for (float& f : x.span()) f = rng.uniform_float(-3.0f, 7.0f);
  std::vector<float> gamma(16, 1.0f), beta(16, 0.0f);
  layernorm_rows(x, gamma, beta, 1e-5f, y);
  for (std::size_t r = 0; r < 2; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (float f : y.row(r)) mean += f;
    mean /= 16.0f;
    for (float f : y.row(r)) var += (f - mean) * (f - mean);
    var /= 16.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(Ops, LayerNormAffineApplied) {
  Tensor x({1, 4}), y;
  x.row(0)[0] = 1.0f;
  x.row(0)[1] = 2.0f;
  x.row(0)[2] = 3.0f;
  x.row(0)[3] = 4.0f;
  std::vector<float> gamma = {2.0f, 2.0f, 2.0f, 2.0f};
  std::vector<float> beta = {1.0f, 1.0f, 1.0f, 1.0f};
  layernorm_rows(x, gamma, beta, 0.0f, y);
  float mean = 0.0f;
  for (float f : y.row(0)) mean += f;
  EXPECT_NEAR(mean / 4.0f, 1.0f, 1e-5f);  // beta shifts the mean
}

TEST(Ops, RmsNormMatchesDefinition) {
  Tensor x({1, 4}), y;
  x.row(0)[0] = 1.0f;
  x.row(0)[1] = -2.0f;
  x.row(0)[2] = 3.0f;
  x.row(0)[3] = -4.0f;
  std::vector<float> gamma = {1.0f, 1.0f, 1.0f, 2.0f};
  const float eps = 1e-6f;
  rmsnorm_rows(x, gamma, eps, y);
  const float ms = (1.0f + 4.0f + 9.0f + 16.0f) / 4.0f;
  const float inv = 1.0f / std::sqrt(ms + eps);
  EXPECT_NEAR(y.at(0, 0), 1.0f * inv, 1e-6f);
  EXPECT_NEAR(y.at(0, 3), -4.0f * inv * 2.0f, 1e-6f);
}

TEST(Ops, ActivationValues) {
  EXPECT_EQ(gelu_scalar(0.0f), 0.0f);
  EXPECT_NEAR(gelu_scalar(1.0f), 0.8412f, 1e-3f);
  EXPECT_NEAR(gelu_scalar(-1.0f), -0.1588f, 1e-3f);
  EXPECT_NEAR(silu_scalar(1.0f), 0.7311f, 1e-3f);
  EXPECT_EQ(silu_scalar(0.0f), 0.0f);
  EXPECT_NEAR(sigmoid_scalar(0.0f), 0.5f, 1e-6f);

  std::vector<float> v = {-2.0f, -0.5f, 0.0f, 0.5f, 2.0f};
  relu(v);
  EXPECT_EQ(v[0], 0.0f);
  EXPECT_EQ(v[1], 0.0f);
  EXPECT_EQ(v[3], 0.5f);
  EXPECT_EQ(v[4], 2.0f);
}

TEST(Ops, ActivationsShrinkLargeNegativeFaults) {
  // The mechanism behind non-critical FC1/GATE: activations squash the
  // negative half, so half of extreme faulty values vanish.
  EXPECT_EQ(std::max(-65504.0f, 0.0f), 0.0f);
  EXPECT_NEAR(silu_scalar(-65504.0f), 0.0f, 1e-3f);
  EXPECT_NEAR(gelu_scalar(-65504.0f), 0.0f, 1e-3f);
}

TEST(Ops, RopePreservesNormAndIsPositionDependent) {
  Xoshiro256 rng(4);
  std::vector<float> v(16);
  for (float& f : v) f = rng.uniform_float(-1.0f, 1.0f);
  std::vector<float> v0 = v, v5 = v;
  rope_apply(v0, 2, 8, 0);
  rope_apply(v5, 2, 8, 5);

  auto norm = [](const std::vector<float>& x) {
    float s = 0.0f;
    for (float f : x) s += f * f;
    return std::sqrt(s);
  };
  EXPECT_NEAR(norm(v0), norm(v), 1e-4f);
  EXPECT_NEAR(norm(v5), norm(v), 1e-4f);
  // Position 0 is the identity rotation.
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v0[i], v[i], 1e-6f);
  // Position 5 differs.
  float diff = 0.0f;
  for (std::size_t i = 0; i < v.size(); ++i) diff += std::fabs(v5[i] - v[i]);
  EXPECT_GT(diff, 0.1f);
}

TEST(Ops, RopeRelativeDotProductProperty) {
  // RoPE makes q(m).k(n) depend only on m-n: rotating both by +1 position
  // preserves the per-head dot product.
  Xoshiro256 rng(5);
  std::vector<float> q(8), k(8);
  for (float& f : q) f = rng.uniform_float(-1.0f, 1.0f);
  for (float& f : k) f = rng.uniform_float(-1.0f, 1.0f);

  auto dot = [](const std::vector<float>& a, const std::vector<float>& b) {
    float s = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  };
  auto q3 = q, k7 = k, q4 = q, k8 = k;
  rope_apply(q3, 1, 8, 3);
  rope_apply(k7, 1, 8, 7);
  rope_apply(q4, 1, 8, 4);
  rope_apply(k8, 1, 8, 8);
  EXPECT_NEAR(dot(q3, k7), dot(q4, k8), 1e-4f);
}

TEST(Ops, ElementwiseHelpers) {
  std::vector<float> a = {1.0f, 2.0f};
  const std::vector<float> b = {3.0f, 4.0f};
  add_inplace(a, b);
  EXPECT_EQ(a[0], 4.0f);
  EXPECT_EQ(a[1], 6.0f);
  mul_inplace(a, b);
  EXPECT_EQ(a[0], 12.0f);
  EXPECT_EQ(a[1], 24.0f);
}

TEST(Ops, QuantizeTensorF16) {
  Tensor t({1, 3});
  t[0] = 1.0f / 3.0f;
  t[1] = 100000.0f;  // overflows half
  t[2] = 1.0f;
  quantize_tensor_f16(t);
  EXPECT_EQ(t[0], quantize_f16(1.0f / 3.0f));
  EXPECT_TRUE(std::isinf(t[1]));
  EXPECT_EQ(t[2], 1.0f);
}

TEST(Ops, ArgmaxFirstOnTiesAndNan) {
  std::vector<float> v = {1.0f, 3.0f, 3.0f, 2.0f};
  EXPECT_EQ(argmax(v), 1u);
  std::vector<float> allnan = {std::nanf(""), std::nanf("")};
  EXPECT_EQ(argmax(allnan), 0u);  // deterministic garbage-token behaviour
}

}  // namespace
}  // namespace ft2
