#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace ft2 {
namespace {

TEST(Tensor, ConstructionZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.numel(), 6u);
  for (float f : t.span()) EXPECT_EQ(f, 0.0f);
}

TEST(Tensor, FullFills) {
  const Tensor t = Tensor::full({2, 2}, 3.5f);
  for (float f : t.span()) EXPECT_EQ(f, 3.5f);
}

TEST(Tensor, TwoDAccessorsRowMajor) {
  Tensor t({2, 3});
  t.at(0, 0) = 1.0f;
  t.at(0, 2) = 2.0f;
  t.at(1, 1) = 3.0f;
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_EQ(t[2], 2.0f);
  EXPECT_EQ(t[4], 3.0f);
}

TEST(Tensor, RowViewIsMutable) {
  Tensor t({3, 4});
  auto row = t.row(1);
  EXPECT_EQ(row.size(), 4u);
  row[2] = 9.0f;
  EXPECT_EQ(t.at(1, 2), 9.0f);
}

TEST(Tensor, ReshapeKeepsData) {
  Tensor t({2, 6});
  t[7] = 5.0f;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t[7], 5.0f);
  EXPECT_THROW(t.reshape({5, 5}), Error);
}

TEST(Tensor, ThreeDShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
}

TEST(Tensor, EmptyTensor) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, SameShape) {
  Tensor a({2, 3}), b({2, 3}), c({3, 2});
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

}  // namespace
}  // namespace ft2
