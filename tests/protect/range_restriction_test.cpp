#include "protect/range_restriction.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace ft2 {
namespace {

Bounds unit_bounds() {
  Bounds b;
  b.observe(-1.0f);
  b.observe(1.0f);
  return b;
}

TEST(RangeRestriction, ClipToBoundKeepsSignedExtremes) {
  std::vector<float> v = {0.5f, 3.0f, -7.0f, -0.2f};
  ProtectionStats stats;
  range_restrict(v, unit_bounds(), ClipPolicy::kToBound, true, &stats);
  EXPECT_EQ(v[0], 0.5f);
  EXPECT_EQ(v[1], 1.0f);
  EXPECT_EQ(v[2], -1.0f);
  EXPECT_EQ(v[3], -0.2f);
  EXPECT_EQ(stats.oob_corrected, 2u);
  EXPECT_EQ(stats.values_checked, 4u);
}

TEST(RangeRestriction, ClipToZeroZeroesOutliers) {
  std::vector<float> v = {0.5f, 3.0f, -7.0f};
  range_restrict(v, unit_bounds(), ClipPolicy::kToZero, true, nullptr);
  EXPECT_EQ(v[0], 0.5f);
  EXPECT_EQ(v[1], 0.0f);
  EXPECT_EQ(v[2], 0.0f);
}

TEST(RangeRestriction, InfinityIsOutOfBounds) {
  std::vector<float> v = {std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity()};
  range_restrict(v, unit_bounds(), ClipPolicy::kToBound, true, nullptr);
  EXPECT_EQ(v[0], 1.0f);
  EXPECT_EQ(v[1], -1.0f);
}

TEST(RangeRestriction, NanCorrectedWhenEnabled) {
  std::vector<float> v = {std::nanf(""), 0.5f};
  ProtectionStats stats;
  range_restrict(v, unit_bounds(), ClipPolicy::kToBound, true, &stats);
  EXPECT_EQ(v[0], 0.0f);
  EXPECT_EQ(stats.nan_corrected, 1u);
}

TEST(RangeRestriction, NanPassesThroughWhenDisabled) {
  // Schemes without NaN handling (original Ranger): NaN compares false
  // against any bound and survives.
  std::vector<float> v = {std::nanf(""), 5.0f};
  range_restrict(v, unit_bounds(), ClipPolicy::kToZero, false, nullptr);
  EXPECT_TRUE(std::isnan(v[0]));
  EXPECT_EQ(v[1], 0.0f);
}

TEST(RangeRestriction, InvalidBoundsDegradeToNanOnly) {
  const Bounds invalid;  // never observed
  std::vector<float> v = {std::nanf(""), 1e9f, -1e9f};
  ProtectionStats stats;
  range_restrict(v, invalid, ClipPolicy::kToBound, true, &stats);
  EXPECT_EQ(v[0], 0.0f);       // NaN fixed
  EXPECT_EQ(v[1], 1e9f);       // no bounds -> extremes untouched
  EXPECT_EQ(v[2], -1e9f);
  EXPECT_EQ(stats.nan_corrected, 1u);
  EXPECT_EQ(stats.oob_corrected, 0u);
}

TEST(RangeRestriction, BoundaryValuesAreInBounds) {
  std::vector<float> v = {1.0f, -1.0f};
  ProtectionStats stats;
  range_restrict(v, unit_bounds(), ClipPolicy::kToBound, true, &stats);
  EXPECT_EQ(stats.oob_corrected, 0u);
  EXPECT_EQ(v[0], 1.0f);
  EXPECT_EQ(v[1], -1.0f);
}

TEST(RangeRestriction, CorrectNanToZeroHelper) {
  std::vector<float> v = {std::nanf(""), 1.0f, std::nanf(""),
                          std::numeric_limits<float>::infinity()};
  EXPECT_EQ(correct_nan_to_zero(v), 2u);
  EXPECT_EQ(v[0], 0.0f);
  EXPECT_EQ(v[1], 1.0f);
  EXPECT_TRUE(std::isinf(v[3]));  // inf is not NaN, untouched
}

TEST(RangeRestriction, StatsMerge) {
  ProtectionStats a{10, 1, 2}, b{5, 0, 3};
  a.merge(b);
  EXPECT_EQ(a.values_checked, 15u);
  EXPECT_EQ(a.nan_corrected, 1u);
  EXPECT_EQ(a.oob_corrected, 5u);
}

}  // namespace
}  // namespace ft2
