#include "protect/scheme.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "protect/critical.hpp"
#include "protect/detection_scheme.hpp"

namespace ft2 {
namespace {

ModelConfig opt_config() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = 8;
  c.n_blocks = 2;
  c.d_model = 16;
  c.d_ff = 32;
  return c;
}

ModelConfig llama_config() {
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.vocab_size = 8;
  c.n_blocks = 2;
  c.d_model = 16;
  c.d_ff = 24;
  return c;
}

// --- Table 1 coverage matrix ------------------------------------------------

TEST(SchemeSpec, RangerCoversOnlyActivations) {
  const auto spec = scheme_spec(SchemeKind::kRanger, opt_config());
  ASSERT_EQ(spec.covered.size(), 1u);
  EXPECT_EQ(spec.covered[0], LayerKind::kMlpAct);
  EXPECT_EQ(spec.policy, ClipPolicy::kToZero);
  EXPECT_FALSE(spec.correct_nan);
  EXPECT_TRUE(spec.needs_offline_bounds);
  EXPECT_FALSE(spec.online);
}

TEST(SchemeSpec, MaxiMalsCoverage) {
  const auto opt = scheme_spec(SchemeKind::kMaxiMals, opt_config());
  EXPECT_TRUE(opt.covers(LayerKind::kOutProj));
  EXPECT_TRUE(opt.covers(LayerKind::kFc2));
  EXPECT_FALSE(opt.covers(LayerKind::kVProj));
  EXPECT_FALSE(opt.covers(LayerKind::kDownProj));  // not in this arch

  const auto llama = scheme_spec(SchemeKind::kMaxiMals, llama_config());
  EXPECT_TRUE(llama.covers(LayerKind::kOutProj));
  EXPECT_TRUE(llama.covers(LayerKind::kDownProj));
  EXPECT_FALSE(llama.covers(LayerKind::kUpProj));  // the paper's gap
}

TEST(SchemeSpec, GlobalClipperCoversAttentionLinears) {
  const auto spec = scheme_spec(SchemeKind::kGlobalClipper, llama_config());
  EXPECT_TRUE(spec.covers(LayerKind::kVProj));
  EXPECT_TRUE(spec.covers(LayerKind::kOutProj));
  EXPECT_FALSE(spec.covers(LayerKind::kDownProj));  // MLP gap
  EXPECT_TRUE(spec.correct_nan);
}

TEST(SchemeSpec, Ft2CoversAllCriticalLayers) {
  for (const ModelConfig& c : {opt_config(), llama_config()}) {
    const auto spec = scheme_spec(SchemeKind::kFt2, c);
    const auto crit = critical_layers(c);
    EXPECT_EQ(spec.covered, crit);
    EXPECT_EQ(spec.policy, ClipPolicy::kToBound);
    EXPECT_TRUE(spec.correct_nan);
    EXPECT_TRUE(spec.online);
    EXPECT_FALSE(spec.needs_offline_bounds);
    EXPECT_FLOAT_EQ(spec.bound_scale, 2.0f);
  }
}

TEST(SchemeSpec, Ft2OfflineSameCoverageDifferentBoundsSource) {
  const auto on = scheme_spec(SchemeKind::kFt2, llama_config());
  const auto off = scheme_spec(SchemeKind::kFt2Offline, llama_config());
  EXPECT_EQ(on.covered, off.covered);
  EXPECT_EQ(off.policy, ClipPolicy::kToBound);
  EXPECT_FALSE(off.online);
  EXPECT_TRUE(off.needs_offline_bounds);
}

TEST(SchemeSpec, NoneCoversNothing) {
  const auto spec = scheme_spec(SchemeKind::kNone, opt_config());
  EXPECT_TRUE(spec.covered.empty());
}

TEST(SchemeSpec, Names) {
  EXPECT_STREQ(scheme_name(SchemeKind::kFt2), "ft2");
  EXPECT_STREQ(scheme_name(SchemeKind::kGlobalClipper), "global_clipper");
  // The registry supersedes the old fixed enum list: the range family plus
  // the checksum/adaptive built-ins are all registered by name.
  const std::vector<std::string> names = all_scheme_names();
  EXPECT_GE(names.size(), 8u);
  for (const char* expected :
       {"none", "ranger", "maximals", "global_clipper", "ft2", "ft2_offline",
        "abft-linear", "ft2-adaptive"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

// --- ProtectionHook behaviour ------------------------------------------------

HookContext ctx_at(LayerKind kind, bool first_token, int block = 0) {
  return HookContext{LayerSite{block, kind}, 0, first_token};
}

TEST(ProtectionHook, OfflineSchemeClampsCoveredSites) {
  const ModelConfig c = opt_config();
  BoundStore bounds(c);
  bounds.at({0, LayerKind::kFc2}).observe(-1.0f);
  bounds.at({0, LayerKind::kFc2}).observe(1.0f);

  SchemeSpec spec = scheme_spec(SchemeKind::kMaxiMals, c);
  spec.bound_scale = 1.0f;
  ProtectionHook hook(c, spec, bounds);

  std::vector<float> covered = {5.0f, -0.5f};
  hook.on_output(ctx_at(LayerKind::kFc2, false), covered);
  EXPECT_EQ(covered[0], 0.0f);  // MaxiMals clips to zero
  EXPECT_EQ(covered[1], -0.5f);

  std::vector<float> uncovered = {100.0f};
  hook.on_output(ctx_at(LayerKind::kQProj, false), uncovered);
  EXPECT_EQ(uncovered[0], 100.0f);
}

TEST(ProtectionHook, MissingOfflineBoundsThrows) {
  const ModelConfig c = opt_config();
  EXPECT_THROW(
      ProtectionHook(c, scheme_spec(SchemeKind::kRanger, c), BoundStore{}),
      Error);
}

TEST(ProtectionHook, Ft2RecordsDuringFirstTokenThenProtects) {
  const ModelConfig c = opt_config();
  ProtectionHook hook(c, scheme_spec(SchemeKind::kFt2, c));
  hook.on_generation_begin();

  // First-token phase: values observed (bounds [-1, 2]), NaN corrected.
  std::vector<float> first = {-1.0f, 2.0f, std::nanf("")};
  hook.on_output(ctx_at(LayerKind::kVProj, true), first);
  EXPECT_EQ(first[2], 0.0f);
  EXPECT_EQ(hook.online_bounds().at({0, LayerKind::kVProj}).lo, -1.0f);
  EXPECT_EQ(hook.online_bounds().at({0, LayerKind::kVProj}).hi, 2.0f);

  // Following tokens: bounds x2 => [-2, 4]; out-of-bound clips TO BOUND.
  std::vector<float> later = {3.0f, 100.0f, -5.0f, std::nanf("")};
  hook.on_output(ctx_at(LayerKind::kVProj, false), later);
  EXPECT_EQ(later[0], 3.0f);   // inside scaled bounds
  EXPECT_EQ(later[1], 4.0f);   // clipped to hi
  EXPECT_EQ(later[2], -2.0f);  // clipped to lo
  EXPECT_EQ(later[3], 0.0f);   // NaN corrected
}

TEST(ProtectionHook, Ft2FirstTokenIsUnprotectedAgainstExtremes) {
  const ModelConfig c = opt_config();
  ProtectionHook hook(c, scheme_spec(SchemeKind::kFt2, c));
  hook.on_generation_begin();
  std::vector<float> first = {65504.0f};
  hook.on_output(ctx_at(LayerKind::kOutProj, true), first);
  EXPECT_EQ(first[0], 65504.0f);  // only NaN is corrected in phase one
}

TEST(ProtectionHook, Ft2BoundsResetPerGeneration) {
  const ModelConfig c = opt_config();
  ProtectionHook hook(c, scheme_spec(SchemeKind::kFt2, c));
  hook.on_generation_begin();
  std::vector<float> v = {10.0f};
  hook.on_output(ctx_at(LayerKind::kVProj, true), v);
  EXPECT_TRUE(hook.online_bounds().at({0, LayerKind::kVProj}).valid());
  hook.on_generation_begin();
  EXPECT_FALSE(hook.online_bounds().at({0, LayerKind::kVProj}).valid());
}

TEST(ProtectionHook, PerBlockBoundsAreIndependent) {
  const ModelConfig c = opt_config();
  ProtectionHook hook(c, scheme_spec(SchemeKind::kFt2, c));
  hook.on_generation_begin();
  std::vector<float> small = {0.1f};
  std::vector<float> big = {10.0f};
  hook.on_output(ctx_at(LayerKind::kVProj, true, 0), small);
  hook.on_output(ctx_at(LayerKind::kVProj, true, 1), big);

  // Block 0 bounds: [0.1, 0.1] -> scaled [0.05, 0.2]. 5.0 clips to 0.2.
  std::vector<float> v0 = {5.0f};
  hook.on_output(ctx_at(LayerKind::kVProj, false, 0), v0);
  EXPECT_FLOAT_EQ(v0[0], 0.2f);
  // Block 1 bounds scaled to [5, 20]: 5.0 stays.
  std::vector<float> v1 = {5.0f};
  hook.on_output(ctx_at(LayerKind::kVProj, false, 1), v1);
  EXPECT_FLOAT_EQ(v1[0], 5.0f);
}

TEST(ProtectionHook, NoneSchemeIsTransparent) {
  const ModelConfig c = opt_config();
  ProtectionHook hook(c, scheme_spec(SchemeKind::kNone, c));
  std::vector<float> v = {std::nanf(""), 1e9f};
  hook.on_output(ctx_at(LayerKind::kVProj, false), v);
  EXPECT_TRUE(std::isnan(v[0]));
  EXPECT_EQ(v[1], 1e9f);
}

TEST(ProtectionHook, MemoryAccounting) {
  const ModelConfig c = llama_config();  // 4 critical kinds x 2 blocks
  ProtectionHook hook(c, scheme_spec(SchemeKind::kFt2, c));
  EXPECT_EQ(hook.protected_layer_count(), 8u);
  EXPECT_EQ(hook.bound_memory_bytes(), 8u * 8u);
}

}  // namespace
}  // namespace ft2
