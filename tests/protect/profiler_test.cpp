#include "protect/profiler.hpp"

#include <gtest/gtest.h>

#include "nn/model.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(3);
  return TransformerLM(c, init_weights(c, rng));
}

OfflineProfileOptions profile_opts(std::size_t n_inputs, std::uint64_t seed,
                                   std::size_t max_new_tokens) {
  OfflineProfileOptions o;
  o.n_inputs = n_inputs;
  o.seed = seed;
  o.max_new_tokens = max_new_tokens;
  return o;
}

TEST(Profiler, OfflineBoundsCoverEveryLinearSite) {
  const TransformerLM model = micro_model();
  const auto gen = make_generator(DatasetKind::kSynthQA);
  const BoundStore bounds =
      profile_offline_bounds(model, *gen, profile_opts(3, 11, 6));

  for (std::size_t b = 0; b < model.config().n_blocks; ++b) {
    for (LayerKind kind : model.config().block_layers()) {
      const LayerSite site{static_cast<int>(b), kind};
      EXPECT_TRUE(bounds.at(site).valid())
          << "block " << b << " " << layer_kind_name(kind);
      EXPECT_LE(bounds.at(site).lo, bounds.at(site).hi);
    }
  }
}

TEST(Profiler, MoreInputsWidenOrKeepBounds) {
  const TransformerLM model = micro_model();
  const auto gen = make_generator(DatasetKind::kSynthQA);
  const BoundStore few =
      profile_offline_bounds(model, *gen, profile_opts(2, 11, 6));
  const BoundStore many =
      profile_offline_bounds(model, *gen, profile_opts(8, 11, 6));
  for (std::size_t b = 0; b < model.config().n_blocks; ++b) {
    for (LayerKind kind : model.config().block_layers()) {
      const LayerSite site{static_cast<int>(b), kind};
      EXPECT_LE(many.at(site).lo, few.at(site).lo + 1e-6f);
      EXPECT_GE(many.at(site).hi, few.at(site).hi - 1e-6f);
    }
  }
}

TEST(Profiler, BoundsAreDeterministic) {
  const TransformerLM model = micro_model();
  const auto gen = make_generator(DatasetKind::kSynthXQA);
  const BoundStore a = profile_offline_bounds(model, *gen, profile_opts(4, 7, 6));
  const BoundStore b = profile_offline_bounds(model, *gen, profile_opts(4, 7, 6));
  const LayerSite site{0, LayerKind::kVProj};
  EXPECT_EQ(a.at(site).lo, b.at(site).lo);
  EXPECT_EQ(a.at(site).hi, b.at(site).hi);
}

TEST(Profiler, BoundsIndependentOfPrefillChunk) {
  // The blocked prefill is bit-exact, so profiled bounds must be IDENTICAL
  // (not just close) for any chunk size.
  const TransformerLM model = micro_model();
  const auto gen = make_generator(DatasetKind::kSynthQA);
  OfflineProfileOptions sequential = profile_opts(3, 5, 6);
  sequential.prefill_chunk = 1;
  OfflineProfileOptions chunked = sequential;
  chunked.prefill_chunk = 8;
  OfflineProfileOptions whole = sequential;
  whole.prefill_chunk = 0;  // whole prompt in one chunk

  const BoundStore a = profile_offline_bounds(model, *gen, sequential);
  const BoundStore b = profile_offline_bounds(model, *gen, chunked);
  const BoundStore c = profile_offline_bounds(model, *gen, whole);
  for (std::size_t blk = 0; blk < model.config().n_blocks; ++blk) {
    for (LayerKind kind : model.config().block_layers()) {
      const LayerSite site{static_cast<int>(blk), kind};
      EXPECT_EQ(a.at(site).lo, b.at(site).lo) << layer_kind_name(kind);
      EXPECT_EQ(a.at(site).hi, b.at(site).hi) << layer_kind_name(kind);
      EXPECT_EQ(a.at(site).lo, c.at(site).lo) << layer_kind_name(kind);
      EXPECT_EQ(a.at(site).hi, c.at(site).hi) << layer_kind_name(kind);
    }
  }
}

TEST(ActivationStats, RecordsPerSiteAndAggregates) {
  ActivationStatsHook stats(4.0f, 8);
  std::vector<float> v0 = {0.5f, 1.5f, -1.2f};  // two NaN-vulnerable
  std::vector<float> v1 = {0.1f, 0.2f, 0.3f};   // none
  stats.on_output(HookContext{{0, LayerKind::kQProj}, 0, true}, v0);
  stats.on_output(HookContext{{1, LayerKind::kQProj}, 0, true}, v1);

  const auto* s0 = stats.find(LayerSite{0, LayerKind::kQProj});
  ASSERT_NE(s0, nullptr);
  EXPECT_EQ(s0->total, 3u);
  EXPECT_EQ(s0->nan_vulnerable, 2u);
  EXPECT_NEAR(s0->nan_vulnerable_fraction(), 2.0 / 3.0, 1e-12);

  const auto agg = stats.aggregate(LayerKind::kQProj);
  EXPECT_EQ(agg.total, 6u);
  EXPECT_EQ(agg.nan_vulnerable, 2u);
  EXPECT_EQ(stats.observed_sites().size(), 2u);
  EXPECT_EQ(stats.find(LayerSite{0, LayerKind::kVProj}), nullptr);
}

TEST(ActivationStats, NanValuesTrackedNotCounted) {
  ActivationStatsHook stats;
  std::vector<float> v = {std::nanf(""), 1.0f};
  stats.on_output(HookContext{{0, LayerKind::kFc1}, 0, true}, v);
  const auto* s = stats.find(LayerSite{0, LayerKind::kFc1});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->total, 2u);
  EXPECT_EQ(s->stats.count(), 1u);  // NaN excluded from moments
  EXPECT_EQ(s->histogram.nan_count(), 1u);
}

}  // namespace
}  // namespace ft2
