#include "protect/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ft2 {
namespace {

TEST(Bounds, ObserveTracksMinMax) {
  Bounds b;
  EXPECT_FALSE(b.valid());
  b.observe(1.0f);
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.lo, 1.0f);
  EXPECT_EQ(b.hi, 1.0f);
  b.observe(-3.0f);
  b.observe(2.5f);
  EXPECT_EQ(b.lo, -3.0f);
  EXPECT_EQ(b.hi, 2.5f);
}

TEST(Bounds, NanObservationsIgnored) {
  Bounds b;
  b.observe(std::nanf(""));
  EXPECT_FALSE(b.valid());
  b.observe(1.0f);
  b.observe(std::nanf(""));
  EXPECT_EQ(b.lo, 1.0f);
  EXPECT_EQ(b.hi, 1.0f);
}

TEST(Bounds, InfinityIsObserved) {
  // An inf during profiling widens the bound to inf — faithful (and caught
  // by tests of the profiling phase, not silently dropped).
  Bounds b;
  b.observe(std::numeric_limits<float>::infinity());
  EXPECT_TRUE(b.valid());
  EXPECT_TRUE(std::isinf(b.hi));
}

TEST(Bounds, ScalingWidensSymmetrically) {
  Bounds b;
  b.observe(-2.0f);
  b.observe(4.0f);
  const Bounds s = b.scaled(2.0f);
  EXPECT_EQ(s.lo, -4.0f);
  EXPECT_EQ(s.hi, 8.0f);

  // Positive lo moves toward zero (widening the admissible interval).
  Bounds pos;
  pos.observe(1.0f);
  pos.observe(3.0f);
  const Bounds ps = pos.scaled(2.0f);
  EXPECT_EQ(ps.lo, 0.5f);
  EXPECT_EQ(ps.hi, 6.0f);

  // Scaling by 1 is identity.
  const Bounds id = b.scaled(1.0f);
  EXPECT_EQ(id.lo, b.lo);
  EXPECT_EQ(id.hi, b.hi);
}

TEST(Bounds, ContainsAndMerge) {
  Bounds a;
  a.observe(0.0f);
  a.observe(1.0f);
  EXPECT_TRUE(a.contains(0.5f));
  EXPECT_FALSE(a.contains(1.5f));
  Bounds b;
  b.observe(-5.0f);
  a.merge(b);
  EXPECT_EQ(a.lo, -5.0f);
  EXPECT_EQ(a.hi, 1.0f);
}

TEST(BoundStore, SiteAddressingAndMemory) {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = 8;
  c.n_blocks = 3;
  BoundStore store(c);
  EXPECT_FALSE(store.empty());
  EXPECT_EQ(store.valid_count(), 0u);
  EXPECT_EQ(store.memory_bytes(), 0u);

  store.at({1, LayerKind::kVProj}).observe(2.0f);
  store.at({2, LayerKind::kFc2}).observe(-1.0f);
  EXPECT_EQ(store.valid_count(), 2u);
  EXPECT_EQ(store.memory_bytes(), 2u * 2u * sizeof(float));
  EXPECT_TRUE(store.at({1, LayerKind::kVProj}).valid());
  EXPECT_FALSE(store.at({0, LayerKind::kVProj}).valid());

  store.reset();
  EXPECT_EQ(store.valid_count(), 0u);
}

TEST(BoundStore, MergeCombinesSites) {
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.vocab_size = 8;
  c.n_blocks = 2;
  BoundStore a(c), b(c);
  a.at({0, LayerKind::kUpProj}).observe(1.0f);
  b.at({0, LayerKind::kUpProj}).observe(5.0f);
  b.at({1, LayerKind::kDownProj}).observe(-2.0f);
  a.merge(b);
  EXPECT_EQ(a.at({0, LayerKind::kUpProj}).hi, 5.0f);
  EXPECT_EQ(a.at({1, LayerKind::kDownProj}).lo, -2.0f);
}

}  // namespace
}  // namespace ft2
