#include "protect/bounds_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace ft2 {
namespace {

ModelConfig config2() {
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.vocab_size = 8;
  c.n_blocks = 2;
  return c;
}

std::string tmp(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(BoundsIo, RoundTripIsExact) {
  const ModelConfig c = config2();
  BoundStore bounds(c);
  bounds.at({0, LayerKind::kVProj}) = Bounds{-1.25f, 3.7182817f, 0.125f};
  bounds.at({1, LayerKind::kDownProj}) = Bounds{0.1f, 0.30000001f};
  bounds.at({1, LayerKind::kUpProj}) = Bounds{-65504.0f, 65504.0f};

  const std::string path = tmp("ft2_bounds_roundtrip.txt");
  save_bounds(path, bounds);
  const BoundStore loaded = load_bounds(path, c);

  for (std::size_t b = 0; b < c.n_blocks; ++b) {
    for (std::size_t k = 0; k < kLayerKindCount; ++k) {
      const LayerSite site{static_cast<int>(b), static_cast<LayerKind>(k)};
      EXPECT_EQ(loaded.at(site).valid(), bounds.at(site).valid());
      if (bounds.at(site).valid()) {
        EXPECT_EQ(loaded.at(site).lo, bounds.at(site).lo);
        EXPECT_EQ(loaded.at(site).hi, bounds.at(site).hi);
        EXPECT_EQ(loaded.at(site).typical, bounds.at(site).typical);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(BoundsIo, BlockCountMismatchThrows) {
  const ModelConfig c = config2();
  BoundStore bounds(c);
  bounds.at({0, LayerKind::kVProj}) = Bounds{0.0f, 1.0f};
  const std::string path = tmp("ft2_bounds_mismatch.txt");
  save_bounds(path, bounds);

  ModelConfig bigger = c;
  bigger.n_blocks = 4;
  EXPECT_THROW(load_bounds(path, bigger), Error);
  std::remove(path.c_str());
}

TEST(BoundsIo, RejectsGarbage) {
  const std::string path = tmp("ft2_bounds_garbage.txt");
  {
    std::ofstream os(path);
    os << "not a bounds file\n";
  }
  EXPECT_THROW(load_bounds(path, config2()), Error);
  std::remove(path.c_str());
  EXPECT_THROW(load_bounds("/nonexistent/bounds", config2()), Error);
}

TEST(BoundsIo, LayerKindNamesRoundTrip) {
  for (std::size_t k = 0; k < kLayerKindCount; ++k) {
    const auto kind = static_cast<LayerKind>(k);
    EXPECT_EQ(layer_kind_from_name(std::string(layer_kind_name(kind))), kind);
  }
  EXPECT_THROW(layer_kind_from_name("NOT_A_LAYER"), Error);
}

}  // namespace
}  // namespace ft2
