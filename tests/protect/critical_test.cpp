// The heuristic must reproduce the paper's Table 1 for every architecture.
#include "protect/critical.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "zoo/zoo.hpp"

namespace ft2 {
namespace {

bool in(const std::vector<LayerKind>& v, LayerKind k) {
  return std::find(v.begin(), v.end(), k) != v.end();
}

ModelConfig arch_config(ArchFamily arch, bool parallel = false) {
  ModelConfig c;
  c.arch = arch;
  c.vocab_size = 8;
  c.parallel_block = parallel;
  if (arch == ArchFamily::kLlama) {
    c.norm = NormKind::kRmsNorm;
    c.position = PositionKind::kRotary;
    c.activation = Activation::kSilu;
  }
  return c;
}

TEST(Critical, OptMatchesPaperTable1) {
  const auto crit = critical_layers(arch_config(ArchFamily::kOpt));
  EXPECT_TRUE(in(crit, LayerKind::kVProj));
  EXPECT_TRUE(in(crit, LayerKind::kOutProj));
  EXPECT_TRUE(in(crit, LayerKind::kFc2));
  EXPECT_FALSE(in(crit, LayerKind::kQProj));
  EXPECT_FALSE(in(crit, LayerKind::kKProj));
  EXPECT_FALSE(in(crit, LayerKind::kFc1));
  EXPECT_EQ(crit.size(), 3u);
}

TEST(Critical, GptjParallelBlockMatchesPaperTable1) {
  const auto crit =
      critical_layers(arch_config(ArchFamily::kGptj, /*parallel=*/true));
  EXPECT_TRUE(in(crit, LayerKind::kVProj));
  EXPECT_TRUE(in(crit, LayerKind::kOutProj));
  EXPECT_TRUE(in(crit, LayerKind::kFc2));
  EXPECT_FALSE(in(crit, LayerKind::kQProj));
  EXPECT_FALSE(in(crit, LayerKind::kFc1));
}

TEST(Critical, LlamaMatchesPaperTable1) {
  const auto crit = critical_layers(arch_config(ArchFamily::kLlama));
  EXPECT_TRUE(in(crit, LayerKind::kVProj));
  EXPECT_TRUE(in(crit, LayerKind::kOutProj));
  EXPECT_TRUE(in(crit, LayerKind::kUpProj));      // no activation on its path
  EXPECT_TRUE(in(crit, LayerKind::kDownProj));
  EXPECT_FALSE(in(crit, LayerKind::kQProj));
  EXPECT_FALSE(in(crit, LayerKind::kKProj));
  EXPECT_FALSE(in(crit, LayerKind::kGateProj));   // guarded by SiLU
  EXPECT_EQ(crit.size(), 4u);
}

TEST(Critical, CriticalAndNonCriticalPartitionLinears) {
  for (const auto& entry : model_zoo()) {
    const auto crit = critical_layers(entry.config);
    const auto noncrit = non_critical_layers(entry.config);
    std::size_t linears = 0;
    for (LayerKind k : entry.config.block_layers()) {
      if (is_linear_layer(k)) ++linears;
    }
    EXPECT_EQ(crit.size() + noncrit.size(), linears) << entry.name;
    for (LayerKind k : crit) {
      EXPECT_FALSE(in(noncrit, k)) << entry.name << " "
                                   << layer_kind_name(k);
    }
  }
}

TEST(Critical, UnknownKindThrows) {
  const LayerGraph g = LayerGraph::build(arch_config(ArchFamily::kOpt));
  EXPECT_THROW(layer_is_critical(g, LayerKind::kGateProj), Error);
}

TEST(Critical, WhyQIsNotCritical) {
  // Q reaches OUT_PROJ only through the attention scale+softmax guard.
  const LayerGraph g = LayerGraph::build(arch_config(ArchFamily::kOpt));
  EXPECT_FALSE(layer_is_critical(g, LayerKind::kQProj));
  // V reaches OUT_PROJ through the (non-guard) weighting op.
  EXPECT_TRUE(layer_is_critical(g, LayerKind::kVProj));
}

}  // namespace
}  // namespace ft2
