// BoundDriftMonitor: strictly observational. The acceptance pin — a
// campaign with the monitor attached produces bit-identical outcomes,
// per-trial records, detections and protect.* counters to one without it,
// while additionally publishing protect.headroom.* — plus direct unit
// coverage of the headroom accounting.
#include "protect/drift.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "fi/trace.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(21);
  return TransformerLM(c, init_weights(c, rng));
}

TEST(BoundDrift, HeadroomBucketsSpanUnitInterval) {
  const auto buckets = headroom_buckets();
  ASSERT_EQ(buckets.size(), 20u);
  EXPECT_DOUBLE_EQ(buckets.front(), 0.05);
  EXPECT_DOUBLE_EQ(buckets.back(), 1.0);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1], buckets[i]);
  }
}

TEST(BoundDrift, ObservesPostFirstTokenDispatches) {
  const TransformerLM model = micro_model();
  const SchemeSpec spec = scheme_spec(SchemeKind::kFt2, model.config());
  MetricsRegistry registry;

  ProtectionHook protection(model.config(), spec, BoundStore{}, &registry);
  DriftMonitorOptions options;
  options.obs.metrics = &registry;
  BoundDriftMonitor monitor(protection, options);

  InferenceSession session(model);
  const auto protect_reg = session.hooks().add(protection);
  const auto monitor_reg = session.hooks().add(monitor);  // after protection
  GenerateOptions opts;
  opts.max_new_tokens = 6;
  opts.eos_token = -1;
  const std::vector<int> prompt = {Vocab::kBos, 5, 9, 13};
  session.generate(prompt, opts);

  // Decode-phase dispatches were monitored; first-token ones were not.
  EXPECT_GT(monitor.total_dispatches(), 0u);
  EXPECT_GE(monitor.near_clip_fraction(), 0.0);
  EXPECT_LE(monitor.near_clip_fraction(), 1.0);

  const MetricsSnapshot snap = registry.snapshot();
  std::uint64_t headroom_samples = 0;
  bool observed_any = false;
  for (LayerKind kind : spec.covered) {
    const auto* hist = snap.find_histogram(
        "protect.headroom." + std::string(layer_kind_name(kind)));
    ASSERT_NE(hist, nullptr);
    headroom_samples += hist->count;
    const Bounds& seen = monitor.observed(kind);
    if (seen.valid()) {
      observed_any = true;
      EXPECT_LE(seen.lo, seen.hi);
    }
  }
  EXPECT_EQ(headroom_samples, monitor.total_dispatches());
  EXPECT_TRUE(observed_any);
  const auto* gauge = snap.find_gauge("protect.headroom.near_clip_frac");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, monitor.near_clip_fraction());
}

struct CampaignArtifacts {
  CampaignResult result;
  std::string records_jsonl;
  MetricsSnapshot snapshot;
};

CampaignArtifacts run_with_drift(bool drift) {
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(2, 99);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  MetricsRegistry registry;
  CampaignConfig config;
  config.trials_per_input = 12;
  config.gen_tokens = 6;
  config.fault_model = FaultModel::kExponentBit;
  config.obs.metrics = &registry;
  config.capture_clips = true;
  config.drift_monitor = drift;

  CampaignArtifacts out;
  TraceCollector trace;
  out.result = run_campaign(model, inputs, SchemeKind::kFt2, BoundStore{},
                            config, trace.callback());
  // trial_ms is wall time — documented as excluded from determinism
  // comparisons — so zero it before serializing.
  TraceCollector normalized;
  for (TrialRecord r : trace.records()) {
    r.trial_ms = 0.0;
    normalized.callback()(r);
  }
  std::ostringstream os;
  normalized.write_jsonl(os);
  out.records_jsonl = os.str();
  out.snapshot = registry.snapshot();
  return out;
}

TEST(BoundDrift, CampaignIsBitIdenticalWithMonitorOnOrOff) {
  const CampaignArtifacts off = run_with_drift(false);
  const CampaignArtifacts on = run_with_drift(true);
  ASSERT_GT(off.result.trials, 0u);

  // Outcomes and the full per-trial records (detections, detect positions,
  // clip events, generated text — everything serialized) are identical.
  EXPECT_EQ(on.result.trials, off.result.trials);
  EXPECT_EQ(on.result.masked_identical, off.result.masked_identical);
  EXPECT_EQ(on.result.masked_semantic, off.result.masked_semantic);
  EXPECT_EQ(on.result.sdc, off.result.sdc);
  EXPECT_EQ(on.result.not_injected, off.result.not_injected);
  EXPECT_EQ(on.records_jsonl, off.records_jsonl);

  // Every metric the drift-off run published exists unchanged in the
  // drift-on snapshot (campaign.* and protect.* counters included);
  // wall-time histograms are exempt (they measure time, not behaviour).
  for (const auto& c : off.snapshot.counters) {
    EXPECT_EQ(on.snapshot.counter_value(c.name), c.value) << c.name;
  }
  for (const auto& h : off.snapshot.histograms) {
    if (h.name == "campaign.trial_ms") continue;
    const auto* matching = on.snapshot.find_histogram(h.name);
    ASSERT_NE(matching, nullptr) << h.name;
    EXPECT_EQ(matching->count, h.count) << h.name;
    EXPECT_EQ(matching->counts, h.counts) << h.name;
  }

  // The drift-on run additionally published headroom data.
  std::uint64_t headroom = 0;
  for (const auto& h : on.snapshot.histograms) {
    if (h.name.rfind("protect.headroom.", 0) == 0) headroom += h.count;
  }
  EXPECT_GT(headroom, 0u);
  EXPECT_NE(on.snapshot.find_gauge("protect.headroom.near_clip_frac"),
            nullptr);
  // ...and the drift-off run did not.
  for (const auto& h : off.snapshot.histograms) {
    EXPECT_NE(h.name.rfind("protect.headroom.", 0), 0u) << h.name;
  }
}

}  // namespace
}  // namespace ft2
