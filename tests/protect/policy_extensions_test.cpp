// Tests for the correction-policy and detector extensions: clip-to-typical
// (Dr.DNA-style), detect-only mode, and median profiling.
#include <gtest/gtest.h>

#include "core/ft2.hpp"

namespace ft2 {
namespace {

Bounds bounds_with_typical(float lo, float hi, float typical) {
  Bounds b;
  b.lo = lo;
  b.hi = hi;
  b.typical = typical;
  return b;
}

TEST(ClipToTypical, ReplacesOutliersWithTypicalValue) {
  std::vector<float> v = {5.0f, 0.2f, -9.0f};
  range_restrict(v, bounds_with_typical(-1.0f, 1.0f, 0.25f),
                 ClipPolicy::kToTypical, true, nullptr);
  EXPECT_EQ(v[0], 0.25f);
  EXPECT_EQ(v[1], 0.2f);
  EXPECT_EQ(v[2], 0.25f);
}

TEST(ClipToTypical, ScaledBoundsKeepTypical) {
  const Bounds b = bounds_with_typical(-2.0f, 2.0f, 0.5f);
  EXPECT_EQ(b.scaled(2.0f).typical, 0.5f);
}

TEST(DetectOnly, CountsWithoutCorrecting) {
  std::vector<float> v = {5.0f, std::nanf(""), 0.1f};
  ProtectionStats stats;
  range_restrict(v, bounds_with_typical(-1.0f, 1.0f, 0.0f),
                 ClipPolicy::kToBound, true, &stats, /*detect_only=*/true);
  EXPECT_EQ(v[0], 5.0f);            // untouched
  EXPECT_TRUE(std::isnan(v[1]));    // untouched
  EXPECT_EQ(stats.oob_corrected, 1u);
  EXPECT_EQ(stats.nan_corrected, 1u);
}

TEST(DetectOnly, InvalidBoundsStillCountNan) {
  std::vector<float> v = {std::nanf(""), 1.0f};
  ProtectionStats stats;
  range_restrict(v, Bounds{}, ClipPolicy::kToBound, true, &stats, true);
  EXPECT_TRUE(std::isnan(v[0]));
  EXPECT_EQ(stats.nan_corrected, 1u);
}

TEST(DetectOnly, SchemeSpecFlagKeepsOutputIntact) {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = 8;
  c.n_blocks = 1;
  SchemeSpec spec = scheme_spec(SchemeKind::kFt2, c);
  spec.detect_only = true;
  ProtectionHook hook(c, spec);
  hook.on_generation_begin();

  std::vector<float> first = {1.0f};
  hook.on_output(HookContext{{0, LayerKind::kVProj}, 0, true}, first);
  std::vector<float> later = {100.0f};
  hook.on_output(HookContext{{0, LayerKind::kVProj}, 1, false}, later);
  EXPECT_EQ(later[0], 100.0f);              // not corrected
  EXPECT_EQ(hook.stats().oob_corrected, 1u);  // but flagged
}

TEST(HistogramQuantile, MatchesSortedOrder) {
  Histogram h(-10.0, 10.0, 4);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.add(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.0);
  // Interpolation between ranks.
  EXPECT_NEAR(h.quantile(0.375), 2.5, 1e-12);
  // Empty histogram.
  Histogram empty(0.0, 1.0, 2);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
}

TEST(MedianProfiling, TypicalValuesFilledAndInsideBounds) {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(8);
  const TransformerLM model(c, init_weights(c, rng));
  const auto gen = make_generator(DatasetKind::kSynthQA);
  OfflineProfileOptions profile;
  profile.n_inputs = 3;
  profile.seed = 4;
  profile.max_new_tokens = 6;
  profile.with_typical = true;
  const BoundStore bounds = profile_offline_bounds(model, *gen, profile);

  for (std::size_t b = 0; b < c.n_blocks; ++b) {
    for (LayerKind kind : c.block_layers()) {
      const Bounds& bd = bounds.at({static_cast<int>(b), kind});
      ASSERT_TRUE(bd.valid());
      EXPECT_GE(bd.typical, bd.lo);
      EXPECT_LE(bd.typical, bd.hi);
    }
  }
}

}  // namespace
}  // namespace ft2
