// Unit tests for the two registry-only schemes introduced with the
// DetectionScheme API (abft-linear, ft2-adaptive) plus the SchemeRef
// parse/display/param surface they plug into.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "protect/abft_linear.hpp"
#include "protect/adaptive.hpp"
#include "protect/detection_scheme.hpp"

namespace ft2 {
namespace {

ModelConfig opt_config() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = 8;
  c.n_blocks = 2;
  c.d_model = 16;
  c.d_ff = 32;
  return c;
}

HookContext ctx_at(LayerKind kind, bool first_token, std::size_t position) {
  HookContext ctx;
  ctx.site = LayerSite{0, kind};
  ctx.position = position;
  ctx.first_token_phase = first_token;
  return ctx;
}

double counter_value(const MetricsRegistry& registry,
                     const std::string& name) {
  for (const auto& c : registry.snapshot().counters) {
    if (c.name == name) return static_cast<double>(c.value);
  }
  return -1.0;
}

// --- abft-linear ------------------------------------------------------------

TEST(AbftLinear, SpecCoversExactlyTheLinearLayers) {
  const ModelConfig config = opt_config();
  AbftLinearScheme scheme(config);
  const SchemeSpec& spec = scheme.spec();
  EXPECT_EQ(spec.name, "abft-linear");
  EXPECT_TRUE(spec.online);
  EXPECT_TRUE(spec.correct_nan);
  EXPECT_FALSE(spec.covered.empty());
  for (LayerKind k : spec.covered) {
    EXPECT_TRUE(is_linear_layer(k)) << layer_kind_name(k);
    EXPECT_TRUE(config.has_layer(k)) << layer_kind_name(k);
  }
  // Four floats per site (row-sum interval + elementwise bounds) — double
  // the driver default.
  EXPECT_EQ(scheme.state_memory_bytes(config),
            spec.covered.size() * config.n_blocks * 4 * sizeof(float));
}

TEST(AbftLinear, ChecksumFlagsCorruptedRowAndClampsIt) {
  const ModelConfig config = opt_config();
  AbftLinearScheme scheme(config);
  MetricsRegistry registry;
  scheme.bind_metrics(registry);
  scheme.begin_generation();
  const LayerKind kind = scheme.spec().covered[0];

  // Calibrate: two fault-free rows of ones -> row-sum range [4, 4],
  // elementwise range [1, 1].
  std::vector<float> calib = {1.0f, 1.0f, 1.0f, 1.0f};
  ProtectionStats delta;
  scheme.detect_and_correct(ctx_at(kind, true, 0), calib, delta, nullptr);
  scheme.detect_and_correct(ctx_at(kind, true, 0), calib, delta, nullptr);
  EXPECT_EQ(scheme.checksum_mismatches(), 0u);

  // A clean row passes untouched.
  std::vector<float> clean = {1.0f, 1.0f, 1.0f, 1.0f};
  delta = {};
  scheme.detect_and_correct(ctx_at(kind, false, 5), clean, delta, nullptr);
  EXPECT_EQ(scheme.checksum_mismatches(), 0u);
  EXPECT_EQ(delta.oob_corrected, 0u);
  EXPECT_FLOAT_EQ(clean[0], 1.0f);

  // A spiked element shifts the row sum far outside the calibrated band:
  // the row is flagged and clamped against the scaled elementwise bounds
  // (hi = 1 * scale = 2).
  std::vector<float> faulty = {1.0f, 1.0f, 1.0f, 100.0f};
  delta = {};
  scheme.detect_and_correct(ctx_at(kind, false, 6), faulty, delta, nullptr);
  EXPECT_EQ(scheme.checksum_mismatches(), 1u);
  EXPECT_EQ(delta.oob_corrected, 1u);
  EXPECT_FLOAT_EQ(faulty[3], 2.0f);
  EXPECT_FLOAT_EQ(faulty[0], 1.0f);  // in-bound elements untouched
  EXPECT_EQ(counter_value(registry, "protect.checksum_mismatch." +
                                        std::string(layer_kind_name(kind))),
            1.0);
}

TEST(AbftLinear, NanZeroedInBothPhases) {
  AbftLinearScheme scheme(opt_config());
  scheme.begin_generation();
  const LayerKind kind = scheme.spec().covered[0];

  std::vector<float> calib = {1.0f, std::numeric_limits<float>::quiet_NaN(),
                              1.0f, 1.0f};
  ProtectionStats delta;
  scheme.detect_and_correct(ctx_at(kind, true, 0), calib, delta, nullptr);
  EXPECT_EQ(delta.nan_corrected, 1u);
  EXPECT_FLOAT_EQ(calib[1], 0.0f);

  std::vector<float> later = {1.0f, 1.0f,
                              std::numeric_limits<float>::quiet_NaN(), 1.0f};
  delta = {};
  scheme.detect_and_correct(ctx_at(kind, false, 4), later, delta, nullptr);
  EXPECT_EQ(delta.nan_corrected, 1u);
  EXPECT_FLOAT_EQ(later[2], 0.0f);
}

TEST(AbftLinear, UncalibratedSiteIsLeftAlone) {
  AbftLinearScheme scheme(opt_config());
  scheme.begin_generation();
  // No first-token dispatch ever reached this site: even a wild row must
  // not be flagged (there is no band to compare against).
  std::vector<float> wild = {100.0f, -100.0f, 100.0f, -100.0f};
  ProtectionStats delta;
  scheme.detect_and_correct(ctx_at(scheme.spec().covered[0], false, 3), wild,
                            delta, nullptr);
  EXPECT_EQ(scheme.checksum_mismatches(), 0u);
  EXPECT_EQ(delta.oob_corrected, 0u);
  EXPECT_FLOAT_EQ(wild[0], 100.0f);
}

TEST(AbftLinear, MarginParameterWidensTheBand) {
  const ModelConfig config = opt_config();
  // Deviation of 0.5 on a degenerate [4, 4] band: flagged at the default
  // margin, accepted at margin=1000 (tolerance 1000 * 1e-3 * 5 = 5).
  for (const auto& [margin, expect_flagged] :
       {std::pair{4.0f, true}, std::pair{1000.0f, false}}) {
    AbftLinearOptions options;
    options.margin = margin;
    AbftLinearScheme scheme(config, options);
    scheme.begin_generation();
    const LayerKind kind = scheme.spec().covered[0];
    std::vector<float> calib = {1.0f, 1.0f, 1.0f, 1.0f};
    ProtectionStats delta;
    scheme.detect_and_correct(ctx_at(kind, true, 0), calib, delta, nullptr);
    std::vector<float> row = {1.0f, 1.0f, 1.0f, 1.5f};
    delta = {};
    scheme.detect_and_correct(ctx_at(kind, false, 5), row, delta, nullptr);
    EXPECT_EQ(scheme.checksum_mismatches(), expect_flagged ? 1u : 0u)
        << "margin=" << margin;
  }
}

TEST(AbftLinear, StateRoundTripRepublishesMismatchCounters) {
  const ModelConfig config = opt_config();
  AbftLinearScheme scheme(config);
  scheme.begin_generation();
  const LayerKind kind = scheme.spec().covered[0];
  std::vector<float> calib = {1.0f, 1.0f, 1.0f, 1.0f};
  ProtectionStats delta;
  scheme.detect_and_correct(ctx_at(kind, true, 0), calib, delta, nullptr);
  std::vector<float> faulty = {1.0f, 1.0f, 1.0f, 100.0f};
  scheme.detect_and_correct(ctx_at(kind, false, 5), faulty, delta, nullptr);
  ASSERT_EQ(scheme.checksum_mismatches(), 1u);
  const auto state = scheme.capture_state();
  ASSERT_NE(state, nullptr);

  AbftLinearScheme restored(config);
  MetricsRegistry registry;
  restored.bind_metrics(registry);
  restored.begin_generation();
  restored.restore_state(state.get());
  EXPECT_EQ(restored.checksum_mismatches(), 1u);
  EXPECT_EQ(counter_value(registry, "protect.checksum_mismatch." +
                                        std::string(layer_kind_name(kind))),
            1.0);
  // Calibration came along: the restored scheme flags the same corruption.
  std::vector<float> again = {1.0f, 1.0f, 1.0f, 100.0f};
  delta = {};
  restored.detect_and_correct(ctx_at(kind, false, 6), again, delta, nullptr);
  EXPECT_EQ(restored.checksum_mismatches(), 2u);
  EXPECT_FLOAT_EQ(again[3], 2.0f);
}

// --- ft2-adaptive -----------------------------------------------------------

TEST(AdaptiveFt2, BehavesLikeFt2UntilHeadroomShrinks) {
  const ModelConfig config = opt_config();
  AdaptiveFt2Scheme scheme(config);
  MetricsRegistry registry;
  scheme.bind_metrics(registry);
  scheme.begin_generation();
  const LayerKind kind = scheme.spec().covered[0];

  // First-token calibration: raw bounds [-1, 1], enforced (x2) [-2, 2].
  std::vector<float> calib = {0.5f, -0.5f, 1.0f, -1.0f};
  ProtectionStats delta;
  scheme.detect_and_correct(ctx_at(kind, true, 0), calib, delta, nullptr);
  const LayerSite site{0, kind};
  ASSERT_TRUE(scheme.online_bounds().at(site).valid());
  EXPECT_FLOAT_EQ(scheme.online_bounds().at(site).hi, 1.0f);

  // Comfortable dispatch (usage 0.25, headroom 0.75): no re-profile.
  std::vector<float> comfy = {0.5f, 0.1f, -0.2f, 0.3f};
  delta = {};
  scheme.detect_and_correct(ctx_at(kind, false, 4), comfy, delta, nullptr);
  EXPECT_EQ(scheme.adapt_events(), 0u);
  EXPECT_FLOAT_EQ(scheme.online_bounds().at(site).hi, 1.0f);

  // Near-clip dispatch (1.9 / 2.0 = usage 0.95, headroom 0.05 <= 0.10):
  // clean, so the raw bounds absorb the extremes.
  std::vector<float> near = {1.9f, 0.0f, 0.0f, 0.0f};
  delta = {};
  scheme.detect_and_correct(ctx_at(kind, false, 5), near, delta, nullptr);
  EXPECT_EQ(delta.oob_corrected, 0u);
  EXPECT_EQ(scheme.adapt_events(), 1u);
  EXPECT_FLOAT_EQ(scheme.online_bounds().at(site).hi, 1.9f);
  EXPECT_EQ(counter_value(registry, "protect.adapt." +
                                        std::string(layer_kind_name(kind))),
            1.0);

  // The same value again now has headroom (enforced hi = 3.8): no adapt.
  std::vector<float> again = {1.9f, 0.0f, 0.0f, 0.0f};
  delta = {};
  scheme.detect_and_correct(ctx_at(kind, false, 6), again, delta, nullptr);
  EXPECT_EQ(scheme.adapt_events(), 1u);
}

TEST(AdaptiveFt2, CorrectedDispatchNeverWidensBounds) {
  AdaptiveFt2Scheme scheme(opt_config());
  scheme.begin_generation();
  const LayerKind kind = scheme.spec().covered[0];
  std::vector<float> calib = {1.0f, -1.0f, 0.0f, 0.0f};
  ProtectionStats delta;
  scheme.detect_and_correct(ctx_at(kind, true, 0), calib, delta, nullptr);

  // 5.0 exceeds the enforced hi (2.0): it is clipped, and the excursion
  // must NOT be merged into the raw bounds.
  std::vector<float> faulty = {5.0f, 0.0f, 0.0f, 0.0f};
  delta = {};
  scheme.detect_and_correct(ctx_at(kind, false, 4), faulty, delta, nullptr);
  EXPECT_EQ(delta.oob_corrected, 1u);
  EXPECT_FLOAT_EQ(faulty[0], 2.0f);  // kToBound
  EXPECT_EQ(scheme.adapt_events(), 0u);
  EXPECT_FLOAT_EQ(scheme.online_bounds().at(LayerSite{0, kind}).hi, 1.0f);
}

TEST(AdaptiveFt2, StateRoundTripRepublishesAdaptCounters) {
  const ModelConfig config = opt_config();
  AdaptiveFt2Scheme scheme(config);
  scheme.begin_generation();
  const LayerKind kind = scheme.spec().covered[0];
  std::vector<float> calib = {1.0f, -1.0f, 0.0f, 0.0f};
  ProtectionStats delta;
  scheme.detect_and_correct(ctx_at(kind, true, 0), calib, delta, nullptr);
  std::vector<float> near = {1.9f, 0.0f, 0.0f, 0.0f};
  scheme.detect_and_correct(ctx_at(kind, false, 4), near, delta, nullptr);
  ASSERT_EQ(scheme.adapt_events(), 1u);
  const auto state = scheme.capture_state();
  ASSERT_NE(state, nullptr);

  AdaptiveFt2Scheme restored(config);
  MetricsRegistry registry;
  restored.bind_metrics(registry);
  restored.begin_generation();
  restored.restore_state(state.get());
  EXPECT_EQ(restored.adapt_events(), 1u);
  EXPECT_FLOAT_EQ(restored.online_bounds().at(LayerSite{0, kind}).hi, 1.9f);
  EXPECT_EQ(counter_value(registry, "protect.adapt." +
                                        std::string(layer_kind_name(kind))),
            1.0);
}

// --- SchemeRef / registry ---------------------------------------------------

TEST(SchemeRef, ParsesBareNameAndParameters) {
  const SchemeRef bare = SchemeRef::parse("ft2");
  EXPECT_EQ(bare.name, "ft2");
  EXPECT_TRUE(bare.params.empty());
  EXPECT_EQ(bare.display(), "ft2");
  EXPECT_FALSE(bare.needs_offline_bounds());

  const SchemeRef ref =
      SchemeRef::parse("ft2-adaptive:threshold=0.2,scale=3");
  EXPECT_EQ(ref.name, "ft2-adaptive");
  EXPECT_EQ(ref.params.at("threshold"), "0.2");
  EXPECT_EQ(ref.params.at("scale"), "3");
  // Canonical display: sorted-key order, independent of input order.
  EXPECT_EQ(ref.display(), "ft2-adaptive:scale=3,threshold=0.2");
}

TEST(SchemeRef, RejectsUnknownSchemesAndMalformedSyntax) {
  EXPECT_THROW(SchemeRef::parse("no_such_scheme"), Error);
  EXPECT_THROW(SchemeRef::parse("ft2:not_a_pair"), Error);
  EXPECT_THROW(SchemeRef::parse(""), Error);
}

TEST(SchemeRef, FactoryRejectsUnknownAndMalformedParams) {
  const ModelConfig config = opt_config();
  EXPECT_THROW(
      SchemeRef::parse("abft-linear:bogus=1").instantiate(config), Error);
  EXPECT_THROW(
      SchemeRef::parse("ft2-adaptive:threshold=abc").instantiate(config),
      Error);
  // Offline schemes refuse to instantiate without profiled bounds.
  EXPECT_THROW(SchemeRef::parse("ranger").instantiate(config), Error);
  EXPECT_TRUE(SchemeRef::parse("ranger").needs_offline_bounds());
}

TEST(SchemeRef, ParametersReachTheScheme) {
  const ModelConfig config = opt_config();
  const auto scheme =
      SchemeRef::parse("ft2-adaptive:threshold=0.9").instantiate(config);
  auto* adaptive = dynamic_cast<AdaptiveFt2Scheme*>(scheme.get());
  ASSERT_NE(adaptive, nullptr);
  adaptive->begin_generation();
  const LayerKind kind = adaptive->spec().covered[0];
  std::vector<float> calib = {1.0f, -1.0f, 0.0f, 0.0f};
  ProtectionStats delta;
  adaptive->detect_and_correct(ctx_at(kind, true, 0), calib, delta, nullptr);
  // Usage 0.25 -> headroom 0.75 <= 0.9: the widened threshold triggers a
  // re-profile the default (0.10) would not.
  std::vector<float> modest = {0.5f, 0.0f, 0.0f, 0.0f};
  delta = {};
  adaptive->detect_and_correct(ctx_at(kind, false, 4), modest, delta,
                               nullptr);
  EXPECT_EQ(adaptive->adapt_events(), 1u);

  const auto abft =
      SchemeRef::parse("abft-linear:margin=9,scale=3").instantiate(config);
  ASSERT_NE(dynamic_cast<AbftLinearScheme*>(abft.get()), nullptr);
}

TEST(SchemeRegistry, BuiltInsEnumerateAndResolve) {
  const auto names = all_scheme_names();
  for (const char* expected :
       {"none", "ranger", "maximals", "global_clipper", "ft2", "ft2_offline",
        "abft-linear", "ft2-adaptive"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
    const SchemeInfo* info = SchemeRegistry::instance().find(expected);
    ASSERT_NE(info, nullptr) << expected;
    EXPECT_FALSE(info->summary.empty()) << expected;
  }
  EXPECT_EQ(SchemeRegistry::instance().find("nope"), nullptr);
}

}  // namespace
}  // namespace ft2
