// Shared fixtures for the serve-engine test files: the micro model, the
// mixed-length prompt/option generators, per-session reference runs, result
// comparators and the SiteRecorder hook used to prove hook-traffic
// equality. scheduler_test.cpp and paged_equivalence_test.cpp both compare
// the engine against solo InferenceSession::generate with these.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "core/ft2.hpp"

namespace ft2::serve_test {

inline TransformerLM micro_model(ArchFamily arch = ArchFamily::kLlama) {
  ModelConfig c;
  c.arch = arch;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 24;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 32;
  c.max_seq = 96;
  switch (arch) {
    case ArchFamily::kOpt:
      c.activation = Activation::kRelu;
      c.norm = NormKind::kLayerNorm;
      c.position = PositionKind::kLearned;
      c.linear_bias = true;
      break;
    case ArchFamily::kGptj:
      c.activation = Activation::kGelu;
      c.norm = NormKind::kLayerNorm;
      c.position = PositionKind::kRotary;
      c.parallel_block = true;
      c.linear_bias = true;
      break;
    case ArchFamily::kLlama:
      c.activation = Activation::kSilu;
      c.norm = NormKind::kRmsNorm;
      c.position = PositionKind::kRotary;
      c.linear_bias = false;
      break;
  }
  Xoshiro256 rng(41);
  return TransformerLM(c, init_weights(c, rng));
}

/// Mixed-length prompts: request r gets a distinct prompt of length
/// 3 + (r * 5) % 11 so batched sequences decode at staggered positions.
inline std::vector<std::vector<int>> mixed_prompts(const TransformerLM& model,
                                                   std::size_t n) {
  std::vector<std::vector<int>> prompts;
  const int vocab = static_cast<int>(model.config().vocab_size);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<int> prompt = {Vocab::kBos};
    const std::size_t len = 3 + (r * 5) % 11;
    for (std::size_t i = 1; i < len; ++i) {
      prompt.push_back(static_cast<int>(r * 17 + i * 7 + 3) % vocab);
    }
    prompts.push_back(std::move(prompt));
  }
  return prompts;
}

/// A deterministic prompt of exactly `len` tokens, optionally opening with
/// the `prefix` tokens (the shared-system-prompt shape).
inline std::vector<int> long_prompt(const TransformerLM& model,
                                    std::size_t len, std::uint64_t salt,
                                    const std::vector<int>& prefix = {}) {
  const int vocab = static_cast<int>(model.config().vocab_size);
  std::vector<int> prompt = prefix;
  if (prompt.empty()) prompt.push_back(Vocab::kBos);
  while (prompt.size() < len) {
    prompt.push_back(
        static_cast<int>((salt * 31 + prompt.size() * 13 + 5) % vocab));
  }
  return prompt;
}

/// Per-request options with staggered generation lengths so requests leave
/// the batch at different steps (continuous batching's churn case).
inline std::vector<GenerateOptions> mixed_options(std::size_t n) {
  const std::size_t lengths[] = {3, 10, 6, 1, 8, 5, 12, 2};
  std::vector<GenerateOptions> all(n);
  for (std::size_t r = 0; r < n; ++r) {
    all[r].max_new_tokens = lengths[r % std::size(lengths)];
    all[r].eos_token = -1;
  }
  return all;
}

inline std::vector<GenerateResult> run_sessions(
    const TransformerLM& model, const std::vector<std::vector<int>>& prompts,
    const std::vector<GenerateOptions>& options) {
  std::vector<GenerateResult> results;
  for (std::size_t r = 0; r < prompts.size(); ++r) {
    InferenceSession session(model);
    results.push_back(session.generate(prompts[r], options[r]));
  }
  return results;
}

inline void expect_equal_results(const GenerateResult& got,
                                 const GenerateResult& ref, std::size_t r,
                                 const char* what) {
  EXPECT_EQ(got.tokens, ref.tokens) << what << ": request " << r;
  EXPECT_EQ(got.positions_run, ref.positions_run) << what << ": request " << r;
  EXPECT_EQ(got.hit_max, ref.hit_max) << what << ": request " << r;
}

/// Token-stream-only comparison for prefix-sharing requests, whose
/// positions_run legitimately excludes the adopted prompt positions.
inline void expect_equal_tokens(const GenerateResult& got,
                                const GenerateResult& ref, std::size_t r,
                                const char* what) {
  EXPECT_EQ(got.tokens, ref.tokens) << what << ": request " << r;
  EXPECT_EQ(got.hit_max, ref.hit_max) << what << ": request " << r;
}

/// Expands every dispatch into per-position rows, grouped by layer site.
class SiteRecorder : public OutputHook {
 public:
  struct Observation {
    std::size_t position;
    bool first_token;
    std::vector<float> values;

    bool operator==(const Observation&) const = default;
  };
  using Key = std::pair<int, int>;  // (block, LayerKind)

  void on_output(const HookContext& ctx, std::span<float> values) override {
    auto& seq = by_site_[{ctx.site.block, static_cast<int>(ctx.site.kind)}];
    for (std::size_t r = 0; r < ctx.n_positions; ++r) {
      const auto row = ctx.row(values, r);
      seq.push_back({ctx.position_at(r), ctx.first_token_phase,
                     std::vector<float>(row.begin(), row.end())});
    }
  }
  void on_generation_begin() override { ++begins_; }
  void on_generation_end() override { ++ends_; }

  const std::map<Key, std::vector<Observation>>& by_site() const {
    return by_site_;
  }
  std::size_t begins() const { return begins_; }
  std::size_t ends() const { return ends_; }

 private:
  std::map<Key, std::vector<Observation>> by_site_;
  std::size_t begins_ = 0;
  std::size_t ends_ = 0;
};

/// Full per-site traffic equality: same sites, same rows, same order.
inline void expect_same_traffic(const SiteRecorder& ref,
                                const SiteRecorder& got, std::size_t r,
                                const char* what) {
  EXPECT_EQ(got.begins(), 1u) << what << ": request " << r;
  EXPECT_EQ(got.ends(), 1u) << what << ": request " << r;
  ASSERT_FALSE(ref.by_site().empty()) << what << ": request " << r;
  ASSERT_EQ(ref.by_site().size(), got.by_site().size())
      << what << ": request " << r;
  for (const auto& [site, ref_obs] : ref.by_site()) {
    const auto it = got.by_site().find(site);
    ASSERT_NE(it, got.by_site().end())
        << what << ": request " << r << " site (" << site.first << ", "
        << site.second << ")";
    ASSERT_EQ(ref_obs.size(), it->second.size())
        << what << ": request " << r << " site (" << site.first << ", "
        << site.second << ")";
    for (std::size_t i = 0; i < ref_obs.size(); ++i) {
      EXPECT_EQ(ref_obs[i], it->second[i])
          << what << ": request " << r << " site (" << site.first << ", "
          << site.second << ") row " << i;
    }
  }
}

}  // namespace ft2::serve_test
