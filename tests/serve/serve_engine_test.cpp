// Bit-exactness of the continuous-batching serve engine against per-session
// InferenceSession::generate:
//   - token streams, positions_run and hit_max identical for batches of
//     mixed-length prompts at any max_batch, greedy and seeded top-k;
//   - hook traffic (per-site rows, positions, order) identical per request;
//   - protection stats and online bounds identical per request;
//   - staggered admission (mid-flight join/leave) changes nothing;
//   - engine counters stay consistent with the work performed.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "core/ft2.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model(ArchFamily arch) {
  ModelConfig c;
  c.arch = arch;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 24;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 32;
  c.max_seq = 96;
  switch (arch) {
    case ArchFamily::kOpt:
      c.activation = Activation::kRelu;
      c.norm = NormKind::kLayerNorm;
      c.position = PositionKind::kLearned;
      c.linear_bias = true;
      break;
    case ArchFamily::kGptj:
      c.activation = Activation::kGelu;
      c.norm = NormKind::kLayerNorm;
      c.position = PositionKind::kRotary;
      c.parallel_block = true;
      c.linear_bias = true;
      break;
    case ArchFamily::kLlama:
      c.activation = Activation::kSilu;
      c.norm = NormKind::kRmsNorm;
      c.position = PositionKind::kRotary;
      c.linear_bias = false;
      break;
  }
  Xoshiro256 rng(41);
  return TransformerLM(c, init_weights(c, rng));
}

/// Mixed-length prompts: request r gets a distinct prompt of length
/// 3 + (r * 5) % 11 so batched sequences decode at staggered positions.
std::vector<std::vector<int>> mixed_prompts(const TransformerLM& model,
                                            std::size_t n) {
  std::vector<std::vector<int>> prompts;
  const int vocab = static_cast<int>(model.config().vocab_size);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<int> prompt = {Vocab::kBos};
    const std::size_t len = 3 + (r * 5) % 11;
    for (std::size_t i = 1; i < len; ++i) {
      prompt.push_back(static_cast<int>(r * 17 + i * 7 + 3) % vocab);
    }
    prompts.push_back(std::move(prompt));
  }
  return prompts;
}

/// Per-request options with staggered generation lengths so requests leave
/// the batch at different steps (continuous batching's churn case).
std::vector<GenerateOptions> mixed_options(std::size_t n) {
  const std::size_t lengths[] = {3, 10, 6, 1, 8, 5, 12, 2};
  std::vector<GenerateOptions> all(n);
  for (std::size_t r = 0; r < n; ++r) {
    all[r].max_new_tokens = lengths[r % std::size(lengths)];
    all[r].eos_token = -1;
  }
  return all;
}

std::vector<GenerateResult> run_sessions(
    const TransformerLM& model, const std::vector<std::vector<int>>& prompts,
    const std::vector<GenerateOptions>& options) {
  std::vector<GenerateResult> results;
  for (std::size_t r = 0; r < prompts.size(); ++r) {
    InferenceSession session(model);
    results.push_back(session.generate(prompts[r], options[r]));
  }
  return results;
}

void expect_equal_results(const GenerateResult& got, const GenerateResult& ref,
                          std::size_t r, const char* what) {
  EXPECT_EQ(got.tokens, ref.tokens) << what << ": request " << r;
  EXPECT_EQ(got.positions_run, ref.positions_run) << what << ": request " << r;
  EXPECT_EQ(got.hit_max, ref.hit_max) << what << ": request " << r;
}

TEST(ServeEngine, GreedyBatchesMatchPerSessionGenerate) {
  for (ArchFamily arch :
       {ArchFamily::kOpt, ArchFamily::kGptj, ArchFamily::kLlama}) {
    const TransformerLM model = micro_model(arch);
    for (std::size_t batch : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
      const auto prompts = mixed_prompts(model, batch);
      const auto options = mixed_options(batch);
      const auto ref = run_sessions(model, prompts, options);

      ServeOptions serve_opts;
      serve_opts.max_batch = batch;
      ServeEngine engine(model, serve_opts);
      std::vector<RequestId> ids;
      for (std::size_t r = 0; r < batch; ++r) {
        ids.push_back(engine.submit(prompts[r], options[r]));
      }
      engine.run();
      for (std::size_t r = 0; r < batch; ++r) {
        ASSERT_TRUE(engine.finished(ids[r]));
        expect_equal_results(engine.result(ids[r]), ref[r], r, "greedy");
      }
    }
  }
}

TEST(ServeEngine, SeededSamplingMatchesPerSessionGenerate) {
  const TransformerLM model = micro_model(ArchFamily::kLlama);
  const std::size_t batch = 5;
  const auto prompts = mixed_prompts(model, batch);
  auto options = mixed_options(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    options[r].temperature = 0.9f;
    options[r].top_k = 3 + r;  // distinct top-k per request
    options[r].sample_seed = 100 + r;
  }
  const auto ref = run_sessions(model, prompts, options);

  ServeEngine engine(model);
  std::vector<RequestId> ids;
  for (std::size_t r = 0; r < batch; ++r) {
    ids.push_back(engine.submit(prompts[r], options[r]));
  }
  engine.run();
  for (std::size_t r = 0; r < batch; ++r) {
    expect_equal_results(engine.result(ids[r]), ref[r], r, "sampled");
    EXPECT_FALSE(engine.result(ids[r]).tokens.empty());
  }
}

TEST(ServeEngine, StaggeredAdmissionMatchesPerSessionGenerate) {
  const TransformerLM model = micro_model(ArchFamily::kLlama);
  const std::size_t total = 6;
  const auto prompts = mixed_prompts(model, total);
  const auto options = mixed_options(total);
  const auto ref = run_sessions(model, prompts, options);

  // max_batch 2 with submissions trickling in while earlier requests are
  // mid-decode: requests join as slots free up and leave at different
  // steps. Per-request results must be oblivious to all of it.
  ServeOptions serve_opts;
  serve_opts.max_batch = 2;
  ServeEngine engine(model, serve_opts);
  std::vector<RequestId> ids;
  ids.push_back(engine.submit(prompts[0], options[0]));
  ids.push_back(engine.submit(prompts[1], options[1]));
  std::size_t next = 2;
  while (engine.queue_depth() > 0 || engine.active_requests() > 0 ||
         next < total) {
    engine.step();
    if (next < total) {  // one new request per step while any remain
      ids.push_back(engine.submit(prompts[next], options[next]));
      ++next;
    }
  }
  for (std::size_t r = 0; r < total; ++r) {
    ASSERT_TRUE(engine.finished(ids[r]));
    expect_equal_results(engine.result(ids[r]), ref[r], r, "staggered");
  }
  EXPECT_EQ(engine.counters().completed, total);
  EXPECT_LE(engine.counters().max_active, serve_opts.max_batch);
}

/// Expands every dispatch into per-position rows, grouped by layer site.
class SiteRecorder : public OutputHook {
 public:
  struct Observation {
    std::size_t position;
    bool first_token;
    std::vector<float> values;

    bool operator==(const Observation&) const = default;
  };
  using Key = std::pair<int, int>;  // (block, LayerKind)

  void on_output(const HookContext& ctx, std::span<float> values) override {
    auto& seq = by_site_[{ctx.site.block, static_cast<int>(ctx.site.kind)}];
    for (std::size_t r = 0; r < ctx.n_positions; ++r) {
      const auto row = ctx.row(values, r);
      seq.push_back({ctx.position_at(r), ctx.first_token_phase,
                     std::vector<float>(row.begin(), row.end())});
    }
  }
  void on_generation_begin() override { ++begins_; }
  void on_generation_end() override { ++ends_; }

  const std::map<Key, std::vector<Observation>>& by_site() const {
    return by_site_;
  }
  std::size_t begins() const { return begins_; }
  std::size_t ends() const { return ends_; }

 private:
  std::map<Key, std::vector<Observation>> by_site_;
  std::size_t begins_ = 0;
  std::size_t ends_ = 0;
};

TEST(ServeEngine, HookTrafficMatchesPerSessionGenerate) {
  const TransformerLM model = micro_model(ArchFamily::kLlama);
  const std::size_t batch = 3;
  const auto prompts = mixed_prompts(model, batch);
  const auto options = mixed_options(batch);

  std::vector<SiteRecorder> session_rec(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    InferenceSession session(model);
    const auto reg = session.hooks().add(session_rec[r]);
    session.generate(prompts[r], options[r]);
  }

  std::vector<SiteRecorder> serve_rec(batch);
  ServeEngine engine(model);
  std::vector<HookRegistration> regs;
  std::vector<RequestId> ids;
  for (std::size_t r = 0; r < batch; ++r) {
    const RequestId id = engine.submit(prompts[r], options[r]);
    regs.push_back(engine.hooks(id).add(serve_rec[r]));
    ids.push_back(id);
  }
  engine.run();

  for (std::size_t r = 0; r < batch; ++r) {
    EXPECT_EQ(serve_rec[r].begins(), 1u) << "request " << r;
    EXPECT_EQ(serve_rec[r].ends(), 1u) << "request " << r;
    ASSERT_FALSE(session_rec[r].by_site().empty());
    ASSERT_EQ(session_rec[r].by_site().size(), serve_rec[r].by_site().size())
        << "request " << r;
    for (const auto& [site, ref_obs] : session_rec[r].by_site()) {
      const auto it = serve_rec[r].by_site().find(site);
      ASSERT_NE(it, serve_rec[r].by_site().end())
          << "request " << r << " site (" << site.first << ", " << site.second
          << ")";
      ASSERT_EQ(ref_obs.size(), it->second.size())
          << "request " << r << " site (" << site.first << ", " << site.second
          << ")";
      for (std::size_t i = 0; i < ref_obs.size(); ++i) {
        EXPECT_EQ(ref_obs[i], it->second[i])
            << "request " << r << " site (" << site.first << ", "
            << site.second << ") row " << i;
      }
    }
  }
}

TEST(ServeEngine, ProtectionStateMatchesPerSessionGenerate) {
  const TransformerLM model = micro_model(ArchFamily::kLlama);
  const std::size_t batch = 3;
  const auto prompts = mixed_prompts(model, batch);
  const auto options = mixed_options(batch);
  const SchemeSpec spec = scheme_spec(SchemeKind::kFt2, model.config());
  const BoundStore no_offline;

  std::vector<ProtectionStats> ref_stats(batch);
  std::vector<BoundStore> ref_bounds;
  for (std::size_t r = 0; r < batch; ++r) {
    ProtectionHook protection(model.config(), spec, no_offline);
    InferenceSession session(model);
    const auto reg = session.hooks().add(protection);
    session.generate(prompts[r], options[r]);
    ref_stats[r] = protection.stats();
    ref_bounds.push_back(protection.online_bounds());
  }

  std::vector<ProtectionHook> hooks;
  hooks.reserve(batch);  // chains hold raw hook pointers
  std::vector<HookRegistration> regs;
  ServeEngine engine(model);
  for (std::size_t r = 0; r < batch; ++r) {
    hooks.emplace_back(model.config(), spec, no_offline);
    const RequestId id = engine.submit(prompts[r], options[r]);
    regs.push_back(engine.hooks(id).add(hooks.back()));
  }
  engine.run();

  for (std::size_t r = 0; r < batch; ++r) {
    EXPECT_EQ(hooks[r].stats().values_checked, ref_stats[r].values_checked)
        << "request " << r;
    EXPECT_EQ(hooks[r].stats().oob_corrected, ref_stats[r].oob_corrected)
        << "request " << r;
    EXPECT_EQ(hooks[r].stats().nan_corrected, ref_stats[r].nan_corrected)
        << "request " << r;
    for (std::size_t b = 0; b < model.config().n_blocks; ++b) {
      for (std::size_t k = 0; k < kLayerKindCount; ++k) {
        const LayerSite site{static_cast<int>(b), static_cast<LayerKind>(k)};
        const Bounds& got = hooks[r].online_bounds().at(site);
        const Bounds& want = ref_bounds[r].at(site);
        EXPECT_EQ(got.lo, want.lo) << "request " << r << " block " << b;
        EXPECT_EQ(got.hi, want.hi) << "request " << r << " block " << b;
      }
    }
  }
}

TEST(ServeEngine, ZeroMaxNewTokensFinishesWithoutSampling) {
  const TransformerLM model = micro_model(ArchFamily::kOpt);
  const auto prompts = mixed_prompts(model, 1);
  GenerateOptions opts;
  opts.max_new_tokens = 0;

  InferenceSession session(model);
  const auto ref = session.generate(prompts[0], opts);

  ServeEngine engine(model);
  const RequestId id = engine.submit(prompts[0], opts);
  engine.run();
  expect_equal_results(engine.result(id), ref, 0, "max_new=0");
  EXPECT_TRUE(engine.result(id).tokens.empty());
  EXPECT_EQ(engine.counters().decode_steps, 0u);
}

TEST(ServeEngine, CountersAreConsistentWithWorkDone) {
  const TransformerLM model = micro_model(ArchFamily::kLlama);
  const std::size_t batch = 4;
  const auto prompts = mixed_prompts(model, batch);
  const auto options = mixed_options(batch);

  ServeOptions serve_opts;
  serve_opts.max_batch = 2;
  ServeEngine engine(model, serve_opts);
  EXPECT_EQ(engine.resident_cache_bytes(), 0u);
  std::vector<RequestId> ids;
  std::size_t expected_prefill = 0;
  for (std::size_t r = 0; r < batch; ++r) {
    ids.push_back(engine.submit(prompts[r], options[r]));
    expected_prefill += prompts[r].size();
  }
  // Paged mode (the default) maps no physical blocks until admission, so
  // queued requests cost nothing. Block-granular growth and shared-block
  // dedup are covered in scheduler_test.cpp.
  EXPECT_EQ(engine.resident_cache_bytes(), 0u);
  EXPECT_EQ(engine.counters().submitted, batch);
  EXPECT_EQ(engine.queue_depth(), batch);
  engine.run();

  const ServeCounters& c = engine.counters();
  EXPECT_EQ(c.completed, batch);
  EXPECT_EQ(c.prefill_positions, expected_prefill);
  EXPECT_EQ(c.max_queue_depth, batch);
  EXPECT_LE(c.max_active, serve_opts.max_batch);
  EXPECT_GT(c.decode_steps, 0u);
  EXPECT_GE(c.decode_rows, c.decode_steps);
  EXPECT_GT(c.avg_decode_batch(), 0.0);
  std::size_t expected_tokens = 0;
  for (std::size_t r = 0; r < batch; ++r) {
    expected_tokens += engine.result(ids[r]).tokens.size();
    const RequestStats& stats = engine.request_stats(ids[r]);
    EXPECT_EQ(stats.prompt_tokens, prompts[r].size());
    EXPECT_EQ(stats.generated_tokens, engine.result(ids[r]).tokens.size());
  }
  EXPECT_EQ(c.generated_tokens, expected_tokens);
  EXPECT_EQ(engine.resident_cache_bytes(), 0u);  // all retired
}

TEST(ServeEngine, PackedWeightsOffIsStillBitExact) {
  const TransformerLM model = micro_model(ArchFamily::kGptj);
  const std::size_t batch = 3;
  const auto prompts = mixed_prompts(model, batch);
  const auto options = mixed_options(batch);
  const auto ref = run_sessions(model, prompts, options);

  ServeOptions serve_opts;
  serve_opts.pack_weights = false;
  ServeEngine engine(model, serve_opts);
  std::vector<RequestId> ids;
  for (std::size_t r = 0; r < batch; ++r) {
    ids.push_back(engine.submit(prompts[r], options[r]));
  }
  engine.run();
  for (std::size_t r = 0; r < batch; ++r) {
    expect_equal_results(engine.result(ids[r]), ref[r], r, "unpacked");
  }
}

TEST(ServeEngine, MixedExecConfigsBatchTogether) {
  const TransformerLM model = micro_model(ArchFamily::kLlama);
  const std::size_t batch = 4;
  const auto prompts = mixed_prompts(model, batch);
  auto options = mixed_options(batch);
  options[1].fp16 = false;
  options[2].chunked_accum = true;
  options[3].fp16 = false;
  options[3].chunked_accum = true;
  const auto ref = run_sessions(model, prompts, options);

  ServeEngine engine(model);
  std::vector<RequestId> ids;
  for (std::size_t r = 0; r < batch; ++r) {
    ids.push_back(engine.submit(prompts[r], options[r]));
  }
  engine.run();
  for (std::size_t r = 0; r < batch; ++r) {
    expect_equal_results(engine.result(ids[r]), ref[r], r, "mixed exec");
  }
}

}  // namespace
}  // namespace ft2
