// Scheduler policy and the engine behaviors built on it:
//   - admission order is priority desc, deadline asc, submission seq asc;
//   - eviction order mirrors admission and respects the limit entry;
//   - max_queue_depth backpressure rejects with a typed ft2::Error and
//     counts serve.rejected;
//   - cancellation works queued, mid-prefill and mid-decode;
//   - swap preemption under pool pressure is bit-exact including hook
//     traffic; recompute preemption reproduces solo tokens;
//   - copy-on-write prefix sharing reproduces solo tokens, survives
//     registry eviction, and resident_cache_bytes counts shared blocks
//     once.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "serve_test_util.hpp"

namespace ft2 {
namespace {

using serve_test::SiteRecorder;
using serve_test::expect_equal_results;
using serve_test::expect_equal_tokens;
using serve_test::expect_same_traffic;
using serve_test::long_prompt;
using serve_test::micro_model;
using serve_test::mixed_options;
using serve_test::mixed_prompts;
using serve_test::run_sessions;

SchedEntry entry(RequestId id, int priority, double deadline_ms,
                 std::uint64_t seq) {
  return SchedEntry{id, priority, deadline_ms, seq};
}

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Scheduler, AdmitPrefersPriorityThenDeadlineThenSeq) {
  const SchedEntry low = entry(1, 0, kInf, 1);
  const SchedEntry high = entry(2, 5, kInf, 2);
  const SchedEntry tight = entry(3, 5, 10.0, 3);
  const SchedEntry tight_later = entry(4, 5, 10.0, 4);

  EXPECT_TRUE(Scheduler::admit_before(high, low));
  EXPECT_FALSE(Scheduler::admit_before(low, high));
  EXPECT_TRUE(Scheduler::admit_before(tight, high));   // earlier deadline
  EXPECT_TRUE(Scheduler::admit_before(tight, tight_later));  // FIFO tie-break
  EXPECT_FALSE(Scheduler::admit_before(tight, tight));       // strict order
}

TEST(Scheduler, PopDrainsInAdmissionOrder) {
  Scheduler sched;
  sched.enqueue(entry(1, 0, kInf, 1));
  sched.enqueue(entry(2, 1, kInf, 2));
  sched.enqueue(entry(3, 1, 25.0, 3));
  sched.enqueue(entry(4, 9, kInf, 4));
  EXPECT_EQ(sched.depth(), 4u);
  ASSERT_NE(sched.peek(), nullptr);
  EXPECT_EQ(sched.peek()->id, 4u);

  std::vector<RequestId> order;
  while (auto e = sched.pop()) order.push_back(e->id);
  EXPECT_EQ(order, (std::vector<RequestId>{4, 3, 2, 1}));
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.peek(), nullptr);
}

TEST(Scheduler, EraseRemovesQueuedEntry) {
  Scheduler sched;
  sched.enqueue(entry(1, 0, kInf, 1));
  sched.enqueue(entry(2, 0, kInf, 2));
  EXPECT_TRUE(sched.erase(1));
  EXPECT_FALSE(sched.erase(1));  // already gone
  EXPECT_EQ(sched.depth(), 1u);
  EXPECT_EQ(sched.pop()->id, 2u);
}

TEST(Scheduler, EvictionMirrorsAdmissionAndRespectsLimit) {
  const SchedEntry low = entry(1, 0, kInf, 1);
  const SchedEntry low_young = entry(2, 0, kInf, 5);
  const SchedEntry high = entry(3, 8, kInf, 2);

  // Lower priority evicts first; equal priority evicts the youngest.
  EXPECT_TRUE(Scheduler::evict_before(low, high));
  EXPECT_TRUE(Scheduler::evict_before(low_young, low));

  const std::array<SchedEntry, 3> holders = {low, low_young, high};
  const auto victim = Scheduler::pick_victim(holders);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 2u);  // the youngest low-priority holder

  // A limit excludes candidates the limit would not outrank: nothing at or
  // above `low`'s order may be evicted on low's behalf.
  const auto limited = Scheduler::pick_victim(holders, &low);
  ASSERT_TRUE(limited.has_value());
  EXPECT_EQ(limited->id, 2u);
  const std::array<SchedEntry, 1> only_high = {high};
  EXPECT_FALSE(Scheduler::pick_victim(only_high, &low).has_value());
  // An entry never qualifies as its own victim under its own limit.
  const std::array<SchedEntry, 1> self = {low};
  EXPECT_FALSE(Scheduler::pick_victim(self, &low).has_value());
}

TEST(ServeScheduler, MaxQueueDepthRejectsWithTypedError) {
  const TransformerLM model = micro_model();
  const auto prompts = mixed_prompts(model, 4);
  const auto options = mixed_options(4);

  MetricsRegistry registry;
  ServeOptions serve_opts;
  serve_opts.max_batch = 1;
  serve_opts.max_queue_depth = 2;
  serve_opts.obs.metrics = &registry;
  ServeEngine engine(model, serve_opts);

  const RequestId a = engine.submit(prompts[0], options[0]);
  const RequestId b = engine.submit(prompts[1], options[1]);
  EXPECT_EQ(engine.queue_depth(), 2u);
  EXPECT_THROW(engine.submit(prompts[2], options[2]), Error);
  EXPECT_EQ(engine.counters().rejected, 1u);
  EXPECT_EQ(engine.counters().submitted, 2u);
  EXPECT_EQ(registry.snapshot().counter_value("serve.rejected"), 1u);

  engine.run();
  EXPECT_TRUE(engine.finished(a));
  EXPECT_TRUE(engine.finished(b));

  // The window reopens once the queue drains.
  const RequestId c = engine.submit(prompts[3], options[3]);
  engine.run();
  EXPECT_TRUE(engine.finished(c));
  EXPECT_EQ(engine.counters().completed, 3u);
  EXPECT_EQ(engine.counters().rejected, 1u);
}

TEST(ServeScheduler, PriorityAndDeadlineGovernAdmissionOrder) {
  const TransformerLM model = micro_model();
  const std::size_t n = 4;
  const auto prompts = mixed_prompts(model, n);
  std::vector<GenerateOptions> options(n);
  for (auto& o : options) {
    o.max_new_tokens = 3;
    o.eos_token = -1;
  }
  const auto ref = run_sessions(model, prompts, options);

  // One slot, all four queued before the first step: the drain order is
  // pure policy. Submission order is the worst-cased inverse.
  ServeOptions serve_opts;
  serve_opts.max_batch = 1;
  ServeEngine engine(model, serve_opts);

  std::vector<RequestId> first_token_order;
  const auto record = [&first_token_order](RequestId id, std::size_t index,
                                           int) {
    if (index == 0) first_token_order.push_back(id);
  };
  ServeSubmitOptions fifo;            // priority 0, no deadline
  ServeSubmitOptions high;            // priority 1, no deadline
  high.priority = 1;
  ServeSubmitOptions high_deadline;   // priority 1, 10 ms TTFT deadline
  high_deadline.priority = 1;
  high_deadline.deadline_ms = 10.0;
  ServeSubmitOptions interactive;     // priority 5
  interactive.priority = 5;
  fifo.on_token = high.on_token = high_deadline.on_token =
      interactive.on_token = record;

  std::vector<RequestId> ids;
  ids.push_back(engine.submit(prompts[0], options[0], fifo));
  ids.push_back(engine.submit(prompts[1], options[1], high));
  ids.push_back(engine.submit(prompts[2], options[2], high_deadline));
  ids.push_back(engine.submit(prompts[3], options[3], interactive));
  engine.run();

  const std::vector<RequestId> expected = {ids[3], ids[2], ids[1], ids[0]};
  EXPECT_EQ(first_token_order, expected);
  for (std::size_t r = 0; r < n; ++r) {
    expect_equal_results(engine.result(ids[r]), ref[r], r, "priority order");
  }
}

TEST(ServeScheduler, CancelQueuedMidPrefillAndMidDecode) {
  const TransformerLM model = micro_model();
  GenerateOptions gen;
  gen.max_new_tokens = 6;
  gen.eos_token = -1;
  gen.prefill_chunk = 2;  // with budget 2: one 2-position chunk per step

  ServeOptions serve_opts;
  serve_opts.max_batch = 1;
  serve_opts.prefill_chunk_budget = 2;
  ServeEngine engine(model, serve_opts);

  // Mid-prefill: one step covers 2 of 8 prompt positions, then cancel.
  const std::vector<int> prompt_a = long_prompt(model, 8, 11);
  const RequestId a = engine.submit(prompt_a, gen);
  engine.step();
  EXPECT_EQ(engine.active_requests(), 1u);
  EXPECT_TRUE(engine.cancel(a));
  EXPECT_TRUE(engine.finished(a));
  EXPECT_TRUE(engine.result(a).cancelled);
  EXPECT_TRUE(engine.result(a).tokens.empty());
  EXPECT_EQ(engine.active_requests(), 0u);

  // Mid-decode: cancel after the first streamed token arrives.
  std::size_t b_tokens = 0;
  ServeSubmitOptions sub;
  sub.on_token = [&b_tokens](RequestId, std::size_t, int) { ++b_tokens; };
  const RequestId b = engine.submit(long_prompt(model, 6, 12), gen, sub);
  while (b_tokens == 0) engine.step();
  EXPECT_TRUE(engine.cancel(b));
  EXPECT_TRUE(engine.result(b).cancelled);
  EXPECT_GE(engine.result(b).tokens.size(), 1u);
  EXPECT_LT(engine.result(b).tokens.size(), gen.max_new_tokens);

  // Queued: cancelled before any step ever sees it.
  const RequestId c = engine.submit(long_prompt(model, 5, 13), gen);
  EXPECT_EQ(engine.queue_depth(), 1u);
  EXPECT_TRUE(engine.cancel(c));
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_TRUE(engine.result(c).cancelled);
  EXPECT_TRUE(engine.result(c).tokens.empty());
  EXPECT_EQ(engine.result(c).positions_run, 0u);

  // Cancelling a finished request is a no-op.
  EXPECT_FALSE(engine.cancel(b));
  EXPECT_EQ(engine.counters().cancelled, 3u);
  EXPECT_EQ(engine.counters().completed, 0u);
  EXPECT_EQ(engine.resident_cache_bytes(), 0u);
  ASSERT_NE(engine.kv_pool(), nullptr);
  EXPECT_EQ(engine.kv_pool()->used_blocks(), 0u);

  // The engine stays healthy for ordinary traffic afterwards.
  const std::vector<int> prompt_d = long_prompt(model, 7, 14);
  const RequestId d = engine.submit(prompt_d, gen);
  engine.run();
  InferenceSession session(model);
  expect_equal_results(engine.result(d), session.generate(prompt_d, gen), 0,
                       "post-cancel");
}

TEST(ServeScheduler, SwapPreemptionIsBitExactWithHooks) {
  const TransformerLM model = micro_model();
  // Two sequences that each fit the pool alone but not together: 30+30 and
  // 26+28 rows against a 12-block x 8-row pool forces a mid-decode
  // preemption of the younger request.
  const std::vector<std::vector<int>> prompts = {long_prompt(model, 30, 1),
                                                 long_prompt(model, 26, 2)};
  std::vector<GenerateOptions> options(2);
  options[0].max_new_tokens = 30;
  options[1].max_new_tokens = 28;
  for (auto& o : options) o.eos_token = -1;

  std::vector<SiteRecorder> solo_rec(2);
  std::vector<GenerateResult> ref;
  for (std::size_t r = 0; r < 2; ++r) {
    InferenceSession session(model);
    const auto reg = session.hooks().add(solo_rec[r]);
    ref.push_back(session.generate(prompts[r], options[r]));
  }

  ServeOptions serve_opts;
  serve_opts.max_batch = 2;
  serve_opts.kv_block_rows = 8;
  serve_opts.kv_pool_blocks = 12;  // exactly one max_seq sequence
  serve_opts.preempt = PreemptMode::kSwap;
  ServeEngine engine(model, serve_opts);

  std::vector<SiteRecorder> serve_rec(2);
  std::vector<HookRegistration> regs;
  std::vector<RequestId> ids;
  for (std::size_t r = 0; r < 2; ++r) {
    ids.push_back(engine.submit(prompts[r], options[r]));
    regs.push_back(engine.hooks(ids[r]).add(serve_rec[r]));
  }
  engine.run();

  EXPECT_GE(engine.counters().preemptions, 1u);
  for (std::size_t r = 0; r < 2; ++r) {
    expect_equal_results(engine.result(ids[r]), ref[r], r, "swap preempt");
    // Swap restores K/V rows verbatim: hooks never see the round trip.
    expect_same_traffic(solo_rec[r], serve_rec[r], r, "swap preempt");
  }
  EXPECT_EQ(engine.kv_pool()->used_blocks(), 0u);
}

TEST(ServeScheduler, RecomputePreemptionMatchesSolo) {
  const TransformerLM model = micro_model();
  const std::vector<std::vector<int>> prompts = {long_prompt(model, 30, 3),
                                                 long_prompt(model, 26, 4)};
  std::vector<GenerateOptions> options(2);
  options[0].max_new_tokens = 30;
  options[1].max_new_tokens = 28;
  for (auto& o : options) o.eos_token = -1;
  const auto ref = run_sessions(model, prompts, options);

  ServeOptions serve_opts;
  serve_opts.max_batch = 2;
  serve_opts.kv_block_rows = 8;
  serve_opts.kv_pool_blocks = 12;
  serve_opts.preempt = PreemptMode::kRecompute;
  ServeEngine engine(model, serve_opts);
  std::vector<RequestId> ids;
  for (std::size_t r = 0; r < 2; ++r) {
    ids.push_back(engine.submit(prompts[r], options[r]));
  }
  engine.run();

  EXPECT_GE(engine.counters().preemptions, 1u);
  for (std::size_t r = 0; r < 2; ++r) {
    expect_equal_results(engine.result(ids[r]), ref[r], r, "recompute");
    EXPECT_GE(engine.request_stats(ids[r]).preemptions +
                  engine.request_stats(ids[1 - r]).preemptions,
              1u);
  }
  // Replayed prompt positions are extra engine work, never extra result
  // positions: counters exceed the per-result tally.
  std::size_t result_positions = 0;
  for (const RequestId id : ids) {
    result_positions += engine.result(id).positions_run;
  }
  EXPECT_GT(engine.counters().prefill_positions +
                engine.counters().decode_rows,
            result_positions);
}

TEST(ServeScheduler, SharedPrefixMatchesSoloAndCountsRows) {
  const TransformerLM model = micro_model();
  // 10 common leading tokens; with 4-row blocks the donor (P=11) registers
  // exactly 2 full blocks = 8 rows, all inside the common region.
  const std::vector<int> common = long_prompt(model, 10, 9);
  const std::vector<int> prompt_a = long_prompt(model, 11, 21, common);
  const std::vector<int> prompt_b = long_prompt(model, 16, 22, common);
  const std::vector<int> prompt_c = long_prompt(model, 13, 23, common);
  GenerateOptions gen;
  gen.max_new_tokens = 5;
  gen.eos_token = -1;

  std::vector<GenerateResult> ref;
  for (const auto* p : {&prompt_a, &prompt_b, &prompt_c}) {
    InferenceSession session(model);
    ref.push_back(session.generate(*p, gen));
  }

  ServeOptions serve_opts;
  serve_opts.max_batch = 1;
  serve_opts.kv_block_rows = 4;
  serve_opts.share_prefix = true;
  ServeEngine engine(model, serve_opts);

  // The donor prefills and registers; the sharers adopt its blocks.
  const RequestId a = engine.submit(prompt_a, gen);
  engine.run();
  const RequestId b = engine.submit(prompt_b, gen);
  const RequestId c = engine.submit(prompt_c, gen);
  engine.run();

  expect_equal_results(engine.result(a), ref[0], 0, "prefix donor");
  expect_equal_tokens(engine.result(b), ref[1], 1, "prefix sharer");
  expect_equal_tokens(engine.result(c), ref[2], 2, "prefix sharer");
  EXPECT_EQ(engine.request_stats(a).shared_prefix_rows, 0u);
  EXPECT_EQ(engine.request_stats(b).shared_prefix_rows, 8u);
  EXPECT_EQ(engine.request_stats(c).shared_prefix_rows, 8u);
  EXPECT_EQ(engine.counters().shared_prefix_rows, 16u);
  // Adopted positions are skipped, not run.
  EXPECT_EQ(engine.result(b).positions_run + 8, ref[1].positions_run);
}

TEST(ServeScheduler, ResidentBytesCountSharedBlocksOnce) {
  const TransformerLM model = micro_model();
  const std::vector<int> prompt = long_prompt(model, 13, 5);
  GenerateOptions gen;
  gen.max_new_tokens = 4;
  gen.eos_token = -1;

  ServeOptions serve_opts;
  serve_opts.max_batch = 2;
  serve_opts.kv_block_rows = 4;
  serve_opts.share_prefix = true;
  ServeEngine engine(model, serve_opts);
  ASSERT_NE(engine.kv_pool(), nullptr);
  const std::size_t bb = engine.kv_pool()->block_bytes();

  // Donor run registers a 3-block (12-row) prefix the engine keeps alive.
  const RequestId a = engine.submit(prompt, gen);
  engine.run();
  EXPECT_EQ(engine.resident_cache_bytes(), 0u);  // a retired
  EXPECT_EQ(engine.kv_pool()->used_blocks(), 3u);

  // Two sharers admitted in one step: 3 shared blocks + one private tail
  // block each = 5 distinct blocks, not the naive 2 x 4.
  const RequestId b = engine.submit(prompt, gen);
  const RequestId c = engine.submit(prompt, gen);
  engine.step();
  EXPECT_EQ(engine.active_requests(), 2u);
  EXPECT_EQ(engine.kv_pool()->used_blocks(), 5u);
  EXPECT_EQ(engine.resident_cache_bytes(), 5u * bb);
  EXPECT_LT(engine.resident_cache_bytes(), 2u * 4u * bb);

  engine.run();
  EXPECT_EQ(engine.resident_cache_bytes(), 0u);
  EXPECT_EQ(engine.kv_pool()->used_blocks(), 3u);  // registry entry only
  InferenceSession session(model);
  const GenerateResult ref = session.generate(prompt, gen);
  expect_equal_tokens(engine.result(b), ref, 1, "resident sharer");
  expect_equal_tokens(engine.result(c), ref, 2, "resident sharer");

  // Dense mode keeps the original semantics: queued requests already hold
  // their dense max_seq cache.
  ServeOptions dense_opts;
  dense_opts.paged = false;
  ServeEngine dense(model, dense_opts);
  dense.submit(prompt, gen);
  EXPECT_GT(dense.resident_cache_bytes(), 0u);
  dense.run();
  EXPECT_EQ(dense.resident_cache_bytes(), 0u);
}

TEST(ServeScheduler, SharerSurvivesRegistryEviction) {
  const TransformerLM model = micro_model();
  const std::vector<int> shared_prompt = long_prompt(model, 13, 5);
  const std::vector<int> other_prompt = long_prompt(model, 13, 77);
  GenerateOptions gen;
  gen.max_new_tokens = 8;
  gen.eos_token = -1;

  InferenceSession shared_session(model);
  const GenerateResult shared_ref = shared_session.generate(shared_prompt, gen);
  InferenceSession other_session(model);
  const GenerateResult other_ref = other_session.generate(other_prompt, gen);

  ServeOptions serve_opts;
  serve_opts.max_batch = 2;
  serve_opts.kv_block_rows = 4;
  serve_opts.share_prefix = true;
  serve_opts.prefix_cache_entries = 1;  // the next registration evicts
  ServeEngine engine(model, serve_opts);

  const RequestId a = engine.submit(shared_prompt, gen);
  engine.run();

  // b adopts the registered prefix; d's fresh registration evicts that
  // registry entry mid-flight. b's own block references keep the shared
  // rows alive and its stream stays solo-exact.
  const RequestId b = engine.submit(shared_prompt, gen);
  const RequestId d = engine.submit(other_prompt, gen);
  engine.run();

  EXPECT_EQ(engine.request_stats(b).shared_prefix_rows, 12u);
  expect_equal_tokens(engine.result(a), shared_ref, 0, "registry evict");
  expect_equal_tokens(engine.result(b), shared_ref, 1, "registry evict");
  expect_equal_results(engine.result(d), other_ref, 2, "registry evict");

  // A later identical prompt finds the shared entry gone but still runs
  // correctly, prefilling from scratch.
  const RequestId e = engine.submit(shared_prompt, gen);
  engine.run();
  EXPECT_EQ(engine.request_stats(e).shared_prefix_rows, 0u);
  expect_equal_results(engine.result(e), shared_ref, 3, "after eviction");
}

}  // namespace
}  // namespace ft2
