// serve.* / protect.* metrics against the engine's own accounting:
//   - registry counters equal ServeCounters bit for bit after a run;
//   - protect.* per-kind counters equal the sum of the per-request
//     ProtectionHook stats (the bit-exactness acceptance criterion);
//   - ServeCounters accumulate across run() invocations and
//     reset_counters() starts a fresh window without touching the
//     monotonic registry metrics;
//   - tracer wired through ServeOptions records prefill / decode spans.
#include <gtest/gtest.h>

#include <vector>

#include "core/ft2.hpp"
#include "serve/serve_engine.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.activation = Activation::kSilu;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.linear_bias = false;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 24;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 32;
  c.max_seq = 96;
  Xoshiro256 rng(41);
  return TransformerLM(c, init_weights(c, rng));
}

std::vector<std::vector<int>> mixed_prompts(const TransformerLM& model,
                                            std::size_t n) {
  std::vector<std::vector<int>> prompts;
  const int vocab = static_cast<int>(model.config().vocab_size);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<int> prompt = {Vocab::kBos};
    const std::size_t len = 3 + (r * 5) % 11;
    for (std::size_t i = 1; i < len; ++i) {
      prompt.push_back(static_cast<int>(r * 17 + i * 7 + 3) % vocab);
    }
    prompts.push_back(std::move(prompt));
  }
  return prompts;
}

std::vector<GenerateOptions> mixed_options(std::size_t n) {
  const std::size_t lengths[] = {3, 10, 6, 1, 8, 5, 12, 2};
  std::vector<GenerateOptions> all(n);
  for (std::size_t r = 0; r < n; ++r) {
    all[r].max_new_tokens = lengths[r % std::size(lengths)];
    all[r].eos_token = -1;
  }
  return all;
}

TEST(ServeMetrics, RegistryCountersEqualServeCounters) {
  const TransformerLM model = micro_model();
  const std::size_t batch = 4;
  const auto prompts = mixed_prompts(model, batch);
  const auto options = mixed_options(batch);

  MetricsRegistry registry;
  ServeOptions serve_opts;
  serve_opts.max_batch = 2;
  serve_opts.obs.metrics = &registry;
  ServeEngine engine(model, serve_opts);
  std::vector<RequestId> ids;
  for (std::size_t r = 0; r < batch; ++r) {
    ids.push_back(engine.submit(prompts[r], options[r]));
  }
  engine.run();

  const ServeCounters& c = engine.counters();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("serve.requests.submitted"), c.submitted);
  EXPECT_EQ(snap.counter_value("serve.requests.completed"), c.completed);
  EXPECT_EQ(snap.counter_value("serve.tokens.generated"), c.generated_tokens);
  EXPECT_EQ(snap.counter_value("serve.prefill.positions"),
            c.prefill_positions);
  EXPECT_EQ(snap.counter_value("serve.decode.steps"), c.decode_steps);
  EXPECT_EQ(snap.counter_value("serve.decode.rows"), c.decode_rows);

  // One queue-wait and one prefill sample per admitted request, one
  // request-decode sample per completion.
  const auto* queue_wait = snap.find_histogram("serve.queue.wait_ms");
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_EQ(queue_wait->count, c.submitted);
  EXPECT_EQ(queue_wait->nan_count, 0u);
  const auto* prefill = snap.find_histogram("serve.prefill.latency_ms");
  ASSERT_NE(prefill, nullptr);
  EXPECT_EQ(prefill->count, c.submitted);
  const auto* request_decode = snap.find_histogram("serve.request.decode_ms");
  ASSERT_NE(request_decode, nullptr);
  EXPECT_EQ(request_decode->count, c.completed);
  // One decode-step latency sample per non-empty decode step; sub-batches
  // (counted by decode_steps) can only make the counter larger.
  const auto* decode_step = snap.find_histogram("serve.decode.step_ms");
  ASSERT_NE(decode_step, nullptr);
  EXPECT_GT(decode_step->count, 0u);
  EXPECT_LE(decode_step->count, c.decode_steps);

  const auto* occupancy = snap.find_gauge("serve.batch.occupancy");
  ASSERT_NE(occupancy, nullptr);
  EXPECT_GE(occupancy->value, 1.0);
  EXPECT_LE(occupancy->value, static_cast<double>(serve_opts.max_batch));
}

TEST(ServeMetrics, ProtectCountersPinnedToProtectionStats) {
  // The acceptance criterion: protect.* counters in the registry must equal
  // the ProtectionStats the hooks report — the registry is a view over the
  // same events, not a second accounting that could drift.
  const TransformerLM model = micro_model();
  const std::size_t batch = 3;
  const auto prompts = mixed_prompts(model, batch);
  const auto options = mixed_options(batch);
  const SchemeSpec spec = scheme_spec(SchemeKind::kFt2, model.config());

  MetricsRegistry registry;
  ServeOptions serve_opts;
  serve_opts.obs.metrics = &registry;
  ServeEngine engine(model, serve_opts);
  std::vector<ProtectionHook> hooks;
  hooks.reserve(batch);  // chains hold raw hook pointers
  std::vector<HookRegistration> regs;
  for (std::size_t r = 0; r < batch; ++r) {
    hooks.emplace_back(model.config(), spec, BoundStore{}, &registry);
    const RequestId id = engine.submit(prompts[r], options[r]);
    regs.push_back(engine.hooks(id).add(hooks.back()));
  }
  engine.run();

  const MetricsSnapshot snap = registry.snapshot();
  std::size_t total_checked = 0;
  for (LayerKind kind : spec.covered) {
    ProtectionStats per_kind;
    for (const ProtectionHook& hook : hooks) per_kind.merge(hook.stats(kind));
    const std::string name(layer_kind_name(kind));
    EXPECT_EQ(snap.counter_value("protect.checked." + name),
              per_kind.values_checked)
        << name;
    EXPECT_EQ(snap.counter_value("protect.nan." + name),
              per_kind.nan_corrected)
        << name;
    EXPECT_EQ(snap.counter_value("protect.oob." + name),
              per_kind.oob_corrected)
        << name;
    total_checked += per_kind.values_checked;
    // Clip-magnitude histogram: one sample per out-of-bound event.
    const auto* magnitude =
        snap.find_histogram("protect.clip_magnitude." + name);
    ASSERT_NE(magnitude, nullptr) << name;
    EXPECT_EQ(magnitude->count, per_kind.oob_corrected) << name;
  }
  EXPECT_GT(total_checked, 0u);

  // The per-kind façade must sum to the total stats() exactly.
  for (const ProtectionHook& hook : hooks) {
    ProtectionStats summed;
    for (std::size_t k = 0; k < kLayerKindCount; ++k) {
      summed.merge(hook.stats(static_cast<LayerKind>(k)));
    }
    const ProtectionStats total = hook.stats();
    EXPECT_EQ(summed.values_checked, total.values_checked);
    EXPECT_EQ(summed.nan_corrected, total.nan_corrected);
    EXPECT_EQ(summed.oob_corrected, total.oob_corrected);
  }
}

TEST(ServeMetrics, CountersAccumulateAcrossRunsAndResetExplicitly) {
  const TransformerLM model = micro_model();
  const auto prompts = mixed_prompts(model, 2);
  const auto options = mixed_options(2);

  MetricsRegistry registry;
  ServeOptions serve_opts;
  serve_opts.obs.metrics = &registry;
  ServeEngine engine(model, serve_opts);

  engine.submit(prompts[0], options[0]);
  engine.run();
  const ServeCounters first = engine.counters();
  EXPECT_EQ(first.submitted, 1u);
  EXPECT_EQ(first.completed, 1u);

  // Second run on the same engine: counters continue the same tallies.
  engine.submit(prompts[1], options[1]);
  engine.run();
  const ServeCounters second = engine.counters();
  EXPECT_EQ(second.submitted, 2u);
  EXPECT_EQ(second.completed, 2u);
  EXPECT_GE(second.decode_steps, first.decode_steps);
  EXPECT_EQ(second.generated_tokens,
            first.generated_tokens + options[1].max_new_tokens);

  // reset_counters() opens a fresh window...
  engine.reset_counters();
  const ServeCounters& after = engine.counters();
  EXPECT_EQ(after.submitted, 0u);
  EXPECT_EQ(after.completed, 0u);
  EXPECT_EQ(after.decode_steps, 0u);
  EXPECT_EQ(after.generated_tokens, 0u);
  EXPECT_EQ(after.max_active, 0u);

  // ...while the registry metrics stay monotonic (both runs still counted).
  EXPECT_EQ(registry.snapshot().counter_value("serve.requests.completed"),
            2u);
}

TEST(ServeMetrics, TracerThroughServeOptionsRecordsSpans) {
  const TransformerLM model = micro_model();
  const auto prompts = mixed_prompts(model, 2);
  const auto options = mixed_options(2);

  Tracer tracer(64, /*enabled=*/true);
  MetricsRegistry registry;
  ServeOptions serve_opts;
  serve_opts.obs.metrics = &registry;
  serve_opts.obs.tracer = &tracer;
  ServeEngine engine(model, serve_opts);
  for (std::size_t r = 0; r < 2; ++r) {
    engine.submit(prompts[r], options[r]);
  }
  engine.run();

  std::size_t prefill_spans = 0;
  std::size_t decode_spans = 0;
  for (const TraceEvent& event : tracer.events()) {
    if (event.name == "serve.prefill") ++prefill_spans;
    if (event.name == "serve.decode_step") ++decode_spans;
  }
  EXPECT_EQ(prefill_spans, 2u);
  EXPECT_GT(decode_spans, 0u);
}

TEST(ServeMetrics, NullRegistryRunsWithInertHandles) {
  // An engine given no registry under FT2_METRICS=0 semantics: simulate by
  // bypassing default_metrics with an explicit empty run — the engine must
  // behave identically (results are checked elsewhere; here: no crash and
  // no registrations leak into an unrelated registry).
  const TransformerLM model = micro_model();
  const auto prompts = mixed_prompts(model, 1);
  const auto options = mixed_options(1);

  MetricsRegistry unrelated;
  ServeOptions serve_opts;
  serve_opts.obs.metrics = &unrelated;
  {
    ServeEngine engine(model, serve_opts);
    engine.submit(prompts[0], options[0]);
    engine.run();
  }
  // Protection hook constructed with a null registry keeps inert handles.
  const SchemeSpec spec = scheme_spec(SchemeKind::kFt2, model.config());
  ProtectionHook hook(model.config(), spec, BoundStore{}, nullptr);
  InferenceSession session(model);
  const auto reg = session.hooks().add(hook);
  session.generate(prompts[0], options[0]);
  EXPECT_GT(hook.stats().values_checked, 0u);
  // The unrelated registry only ever saw the serve.* registrations above.
  for (const auto& c : unrelated.snapshot().counters) {
    EXPECT_EQ(c.name.rfind("serve.", 0), 0u) << c.name;
  }
}

}  // namespace
}  // namespace ft2
