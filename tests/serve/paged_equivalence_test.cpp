// Paged KV storage is a pure storage substitution: for every batch size,
// admission order, prefill budget and exec config, the paged engine
// produces exactly the tokens, positions and hook traffic of the dense
// engine and of solo InferenceSession::generate.
#include <gtest/gtest.h>

#include <vector>

#include "serve_test_util.hpp"

namespace ft2 {
namespace {

using serve_test::SiteRecorder;
using serve_test::expect_equal_results;
using serve_test::expect_same_traffic;
using serve_test::micro_model;
using serve_test::mixed_options;
using serve_test::mixed_prompts;
using serve_test::run_sessions;

TEST(PagedEquivalence, MatchesDenseAndSoloAcrossBatchesAndBudgets) {
  const TransformerLM model = micro_model();
  for (std::size_t batch : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    const auto prompts = mixed_prompts(model, batch);
    auto options = mixed_options(batch);
    // 3-position chunks so a bounded budget actually spreads prefill over
    // several steps; solo generate uses the identical chunking.
    for (auto& o : options) o.prefill_chunk = 3;
    const auto ref = run_sessions(model, prompts, options);

    for (std::size_t budget : {std::size_t{0}, std::size_t{3}}) {
      for (bool paged : {false, true}) {
        ServeOptions serve_opts;
        serve_opts.max_batch = batch;
        serve_opts.paged = paged;
        serve_opts.prefill_chunk_budget = budget;
        ServeEngine engine(model, serve_opts);
        std::vector<RequestId> ids;
        for (std::size_t r = 0; r < batch; ++r) {
          ids.push_back(engine.submit(prompts[r], options[r]));
        }
        engine.run();
        for (std::size_t r = 0; r < batch; ++r) {
          ASSERT_TRUE(engine.finished(ids[r]));
          expect_equal_results(engine.result(ids[r]), ref[r], r,
                               paged ? "paged" : "dense");
        }
        if (paged) {
          ASSERT_NE(engine.kv_pool(), nullptr);
          EXPECT_EQ(engine.kv_pool()->used_blocks(), 0u);
        } else {
          EXPECT_EQ(engine.kv_pool(), nullptr);
        }
      }
    }
  }
}

TEST(PagedEquivalence, HookTrafficMatchesSoloUnderChunkedPagedPrefill) {
  const TransformerLM model = micro_model();
  const std::size_t batch = 3;
  const auto prompts = mixed_prompts(model, batch);
  auto options = mixed_options(batch);
  for (auto& o : options) o.prefill_chunk = 4;

  std::vector<SiteRecorder> solo_rec(batch);
  std::vector<GenerateResult> ref;
  for (std::size_t r = 0; r < batch; ++r) {
    InferenceSession session(model);
    const auto reg = session.hooks().add(solo_rec[r]);
    ref.push_back(session.generate(prompts[r], options[r]));
  }

  // Paged + an odd chunk budget: chunks interleave with decode steps of
  // earlier requests, yet per-request dispatch order must be untouched.
  ServeOptions serve_opts;
  serve_opts.max_batch = batch;
  serve_opts.prefill_chunk_budget = 5;
  ServeEngine engine(model, serve_opts);
  std::vector<SiteRecorder> serve_rec(batch);
  std::vector<HookRegistration> regs;
  std::vector<RequestId> ids;
  for (std::size_t r = 0; r < batch; ++r) {
    ids.push_back(engine.submit(prompts[r], options[r]));
    regs.push_back(engine.hooks(ids[r]).add(serve_rec[r]));
  }
  engine.run();

  for (std::size_t r = 0; r < batch; ++r) {
    expect_equal_results(engine.result(ids[r]), ref[r], r, "chunked paged");
    expect_same_traffic(solo_rec[r], serve_rec[r], r, "chunked paged");
  }
}

TEST(PagedEquivalence, SeededSamplingAndMixedExecMatchOnPaged) {
  const TransformerLM model = micro_model();
  const std::size_t batch = 4;
  const auto prompts = mixed_prompts(model, batch);
  auto options = mixed_options(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    options[r].temperature = 0.9f;
    options[r].top_k = 3 + r;
    options[r].sample_seed = 100 + r;
  }
  options[1].fp16 = false;
  options[2].chunked_accum = true;
  options[3].fp16 = false;
  options[3].chunked_accum = true;
  const auto ref = run_sessions(model, prompts, options);

  ServeOptions serve_opts;
  serve_opts.prefill_chunk_budget = 6;
  ServeEngine engine(model, serve_opts);
  std::vector<RequestId> ids;
  for (std::size_t r = 0; r < batch; ++r) {
    ids.push_back(engine.submit(prompts[r], options[r]));
  }
  engine.run();
  for (std::size_t r = 0; r < batch; ++r) {
    expect_equal_results(engine.result(ids[r]), ref[r], r,
                         "paged sampled mixed-exec");
    EXPECT_FALSE(engine.result(ids[r]).tokens.empty());
  }
}

TEST(PagedEquivalence, StaggeredAdmissionOnSmallPoolMatchesSolo) {
  const TransformerLM model = micro_model();
  const std::size_t total = 6;
  const auto prompts = mixed_prompts(model, total);
  const auto options = mixed_options(total);
  const auto ref = run_sessions(model, prompts, options);

  // A pool sized for barely two short sequences (far below max_batch *
  // max_seq parity) with requests trickling in mid-flight: admission,
  // growth and slot churn all contend for blocks.
  ServeOptions serve_opts;
  serve_opts.max_batch = 3;
  serve_opts.kv_block_rows = 8;
  serve_opts.kv_pool_blocks = 12;
  serve_opts.prefill_chunk_budget = 4;
  ServeEngine engine(model, serve_opts);
  std::vector<RequestId> ids;
  ids.push_back(engine.submit(prompts[0], options[0]));
  ids.push_back(engine.submit(prompts[1], options[1]));
  std::size_t next = 2;
  while (engine.queue_depth() > 0 || engine.active_requests() > 0 ||
         next < total) {
    engine.step();
    if (next < total) {
      ids.push_back(engine.submit(prompts[next], options[next]));
      ++next;
    }
  }
  for (std::size_t r = 0; r < total; ++r) {
    ASSERT_TRUE(engine.finished(ids[r]));
    expect_equal_results(engine.result(ids[r]), ref[r], r, "small pool");
  }
  EXPECT_EQ(engine.kv_pool()->used_blocks(), 0u);
}

}  // namespace
}  // namespace ft2
