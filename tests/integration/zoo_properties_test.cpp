// Property sweeps over every zoo architecture with random weights
// (training not needed: these are engine/protection invariants).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/ft2.hpp"

namespace ft2 {
namespace {

class ZooConfigTest : public ::testing::TestWithParam<std::string> {
 protected:
  TransformerLM make_model() const {
    const ZooEntry& entry = zoo_entry(GetParam());
    Xoshiro256 rng(entry.seed);
    return TransformerLM(entry.config, init_weights(entry.config, rng));
  }
};

TEST_P(ZooConfigTest, HeuristicCriticalLayersMatchTable1) {
  const ZooEntry& entry = zoo_entry(GetParam());
  const auto crit = critical_layers(entry.config);
  // Every architecture: V_PROJ and OUT_PROJ critical, Q/K not.
  auto has = [&crit](LayerKind k) {
    return std::find(crit.begin(), crit.end(), k) != crit.end();
  };
  EXPECT_TRUE(has(LayerKind::kVProj));
  EXPECT_TRUE(has(LayerKind::kOutProj));
  EXPECT_FALSE(has(LayerKind::kQProj));
  EXPECT_FALSE(has(LayerKind::kKProj));
  if (entry.config.arch == ArchFamily::kLlama) {
    EXPECT_TRUE(has(LayerKind::kUpProj));
    EXPECT_TRUE(has(LayerKind::kDownProj));
    EXPECT_FALSE(has(LayerKind::kGateProj));
    EXPECT_EQ(crit.size(), 4u);
  } else {
    EXPECT_TRUE(has(LayerKind::kFc2));
    EXPECT_FALSE(has(LayerKind::kFc1));
    EXPECT_EQ(crit.size(), 3u);
  }
}

TEST_P(ZooConfigTest, GenerationDeterministicAndInRange) {
  const TransformerLM model = make_model();
  InferenceSession s1(model), s2(model);
  const std::vector<int> prompt = {Vocab::kBos, 10, 20, 30};
  GenerateOptions opts;
  opts.max_new_tokens = 12;
  const auto a = s1.generate(prompt, opts);
  const auto b = s2.generate(prompt, opts);
  EXPECT_EQ(a.tokens, b.tokens);
  for (int t : a.tokens) {
    EXPECT_GE(t, 0);
    EXPECT_LT(static_cast<std::size_t>(t), model.config().vocab_size);
  }
}

TEST_P(ZooConfigTest, Fp16PathProducesOnlyRepresentableValues) {
  // Every hook observation must already lie exactly on the FP16 grid.
  class GridCheckHook : public OutputHook {
   public:
    void on_output(const HookContext&, std::span<float> values) override {
      for (float f : values) {
        if (std::isnan(f)) continue;
        if (quantize_f16(f) != f) ++violations;
      }
    }
    std::size_t violations = 0;
  };
  const TransformerLM model = make_model();
  InferenceSession session(model);
  GridCheckHook hook;
  const auto reg = session.hooks().add(hook);
  GenerateOptions opts;
  opts.max_new_tokens = 6;
  const std::vector<int> grid_prompt = {Vocab::kBos, 5, 6, 7};
  session.generate(grid_prompt, opts);
  EXPECT_EQ(hook.violations, 0u);
}

TEST_P(ZooConfigTest, FaultSiteSpaceConsistentWithHooks) {
  // The number of distinct (site, neuron) pairs the engine actually exposes
  // per position must equal the sampler's site space.
  class WidthSumHook : public OutputHook {
   public:
    void on_output(const HookContext& ctx, std::span<float> values) override {
      if (!ctx.contains_position(0)) return;
      if (!is_linear_layer(ctx.site.kind)) return;
      // Only position 0's row counts (a blocked dispatch may span more).
      sum += ctx.row(values, 0 - ctx.position).size();
    }
    std::size_t sum = 0;
  };
  const TransformerLM model = make_model();
  const FaultSiteSpace space(model.config());
  InferenceSession session(model);
  WidthSumHook hook;
  const auto reg = session.hooks().add(hook);
  GenerateOptions opts;
  opts.max_new_tokens = 1;
  const std::vector<int> width_prompt = {Vocab::kBos, 4};
  session.generate(width_prompt, opts);
  EXPECT_EQ(hook.sum, space.neurons_per_position());
}

TEST_P(ZooConfigTest, Ft2FaultFreeTransparency) {
  // With no faults, FT2 must never alter the generation (take-away #6 only
  // holds if scaled first-token bounds keep all benign decode values).
  const TransformerLM model = make_model();
  const auto gen = make_generator(DatasetKind::kSynthQA);
  Xoshiro256 rng(33);
  for (int i = 0; i < 3; ++i) {
    const Sample sample = gen->generate(rng);
    std::vector<int> prompt = {Vocab::kBos};
    prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                  sample.prompt_tokens.end());
    GenerateOptions opts;
    opts.max_new_tokens = 10;

    InferenceSession bare(model);
    const auto expected = bare.generate(prompt, opts);

    InferenceSession protected_session(model);
    Ft2Protector protector(model);
    protector.attach(protected_session);
    const auto got = protected_session.generate(prompt, opts);
    EXPECT_EQ(got.tokens, expected.tokens) << GetParam() << " sample " << i;
  }
}

TEST_P(ZooConfigTest, ChunkedAccumulationStaysClose) {
  // The Fig. 16 execution-config knob must be a rounding-level change only.
  const TransformerLM model = make_model();
  KvCache c1 = model.make_cache();
  KvCache c2 = model.make_cache();
  Workspace ws(model.config());
  HookChain hooks;
  std::vector<float> seq(model.config().vocab_size);
  std::vector<float> chunked(model.config().vocab_size);
  model.forward_position(3, 0, c1, hooks, ExecConfig{false, false}, true, ws,
                         seq);
  model.forward_position(3, 0, c2, hooks, ExecConfig{false, true}, true, ws,
                         chunked);
  for (std::size_t v = 0; v < seq.size(); ++v) {
    EXPECT_NEAR(seq[v], chunked[v], 1e-3f) << v;
  }
}

TEST_P(ZooConfigTest, CheckpointRoundTripPreservesGeneration) {
  const TransformerLM model = make_model();
  const std::string path =
      (std::filesystem::temp_directory_path() / (GetParam() + "_prop.ft2m"))
          .string();
  save_checkpoint(path, model.config(), model.weights());
  ModelConfig config;
  ModelWeights weights;
  load_checkpoint(path, config, weights);
  const TransformerLM reloaded(config, std::move(weights));

  InferenceSession s1(model), s2(reloaded);
  GenerateOptions opts;
  opts.max_new_tokens = 8;
  const std::vector<int> prompt = {Vocab::kBos, 9, 8, 7};
  EXPECT_EQ(s1.generate(prompt, opts).tokens,
            s2.generate(prompt, opts).tokens);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllZooModels, ZooConfigTest,
    ::testing::Values("opt-sm", "opt-xs", "gptj-sm", "llama-sm", "vicuna-sm",
                      "qwen2-sm", "qwen2-xs"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ft2
