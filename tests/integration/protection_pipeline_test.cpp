// End-to-end injector->protection pipeline behaviour on a deterministic
// micro model: specific faults, specific corrections, observable outcomes.
#include <gtest/gtest.h>

#include "core/ft2.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 24;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 32;
  c.max_seq = 96;
  Xoshiro256 rng(77);
  return TransformerLM(c, init_weights(c, rng));
}

std::vector<int> test_prompt() {
  const auto gen = make_generator(DatasetKind::kSynthQA);
  Xoshiro256 rng(3);
  const Sample s = gen->generate(rng);
  std::vector<int> prompt = {Vocab::kBos};
  prompt.insert(prompt.end(), s.prompt_tokens.begin(),
                s.prompt_tokens.end());
  return prompt;
}

FaultPlan exp_fault_at(const std::vector<int>& prompt, LayerKind kind,
                       std::size_t neuron) {
  FaultPlan plan;
  plan.position = prompt.size() + 1;  // second generated token
  plan.site = {0, kind};
  plan.neuron = neuron;
  plan.flips.count = 1;
  plan.flips.bits[0] = f16::kExponentHigh;
  return plan;
}

TEST(ProtectionPipeline, Ft2ClampsTheInjectedExtremeValue) {
  const TransformerLM model = micro_model();
  const auto prompt = test_prompt();
  const FaultPlan plan = exp_fault_at(prompt, LayerKind::kVProj, 3);

  GenerateOptions opts;
  opts.max_new_tokens = 8;
  opts.eos_token = -1;

  InjectorHook injector(plan);
  Ft2Protector protector(model);
  InferenceSession session(model);
  const auto reg = session.hooks().add(injector);
  protector.attach(session);
  session.generate(prompt, opts);

  ASSERT_TRUE(injector.fired());
  // The flip either created a huge value (clamped as out-of-bound) or a
  // NaN (zeroed); in both cases FT2 must have corrected something at a
  // covered site.
  const auto& stats = protector.stats();
  EXPECT_GE(stats.oob_corrected + stats.nan_corrected, 1u)
      << "injected " << injector.original_value() << " -> "
      << injector.injected_value();
}

TEST(ProtectionPipeline, ProtectedFaultyRunMatchesCleanRunForCoveredSite) {
  // For an extreme fault on a critical layer, the FT2-protected generation
  // should match the fault-free generation far more often than the
  // unprotected faulty generation does. Deterministic sweep over neurons on
  // the trained opt-sm model (a trained model has decisive logit margins;
  // a random-weight model would flip tokens on any perturbation).
  const std::string path = model_cache_dir() + "/opt-sm.ft2m";
  if (!checkpoint_exists(path)) {
    GTEST_SKIP() << "no cached checkpoint (run examples/train_zoo)";
  }
  const auto trained = ensure_model("opt-sm", true);
  const TransformerLM& model = *trained;
  const auto prompt = test_prompt();
  GenerateOptions opts;
  opts.max_new_tokens = 8;
  opts.eos_token = -1;

  InferenceSession clean_session(model);
  const auto clean = clean_session.generate(prompt, opts);

  int unprotected_match = 0;
  int protected_match = 0;
  const int n = static_cast<int>(model.config().d_model);
  for (int i = 0; i < n; ++i) {
    const FaultPlan plan =
        exp_fault_at(prompt, LayerKind::kVProj, static_cast<std::size_t>(i));
    {
      InjectorHook injector(plan);
      InferenceSession session(model);
      const auto reg = session.hooks().add(injector);
      if (session.generate(prompt, opts).tokens == clean.tokens) {
        ++unprotected_match;
      }
    }
    {
      InjectorHook injector(plan);
      Ft2Protector protector(model);
      InferenceSession session(model);
      const auto reg = session.hooks().add(injector);
      protector.attach(session);
      if (session.generate(prompt, opts).tokens == clean.tokens) {
        ++protected_match;
      }
    }
  }
  EXPECT_GT(protected_match, unprotected_match)
      << "protected " << protected_match << "/" << n << " vs unprotected "
      << unprotected_match << "/" << n;
  EXPECT_GE(protected_match, n * 3 / 4);
}

TEST(ProtectionPipeline, UncoveredSiteFaultsPassThroughFt2) {
  // Q_PROJ is not covered by FT2; a fault there must never be corrected by
  // the protection hook at the Q site itself (it may of course be caught
  // later at a covered site).
  const TransformerLM model = micro_model();
  const auto prompt = test_prompt();
  const FaultPlan plan = exp_fault_at(prompt, LayerKind::kQProj, 0);

  GenerateOptions opts;
  opts.max_new_tokens = 4;
  opts.eos_token = -1;

  InjectorHook injector(plan);
  Ft2Protector protector(model);
  InferenceSession session(model);
  const auto reg = session.hooks().add(injector);
  protector.attach(session);
  session.generate(prompt, opts);
  ASSERT_TRUE(injector.fired());
  for (LayerKind k : protector.critical()) {
    EXPECT_NE(k, LayerKind::kQProj);
  }
}

TEST(ProtectionPipeline, RangerIgnoresLinearFaultsEntirely) {
  // Ranger only watches activation outputs: a V_PROJ fault produces zero
  // Ranger corrections unless it propagates into an out-of-bound
  // activation value.
  const TransformerLM model = micro_model();
  const auto gen = make_generator(DatasetKind::kSynthQA);
  OfflineProfileOptions profile;
  profile.n_inputs = 4;
  profile.seed = 9;
  profile.max_new_tokens = 8;
  const BoundStore bounds = profile_offline_bounds(model, *gen, profile);
  const auto prompt = test_prompt();

  // A benign sign flip on a tiny value: no extreme propagation.
  FaultPlan plan = exp_fault_at(prompt, LayerKind::kVProj, 0);
  plan.flips.bits[0] = 0;  // lowest mantissa bit: negligible change

  InjectorHook injector(plan);
  ProtectionHook ranger(model.config(),
                        scheme_spec(SchemeKind::kRanger, model.config()),
                        bounds);
  InferenceSession session(model);
  const auto injector_reg = session.hooks().add(injector);
  const auto ranger_reg = session.hooks().add(ranger);
  GenerateOptions opts;
  opts.max_new_tokens = 4;
  opts.eos_token = -1;
  session.generate(prompt, opts);
  EXPECT_EQ(ranger.stats().oob_corrected, 0u);
}

TEST(ProtectionPipeline, NanFaultOnCriticalLayerIsZeroed) {
  // Force a NaN directly (flip the top exponent bit of a NaN-vulnerable
  // value): FT2 must zero it even during the first-token phase.
  class PlantValueHook : public OutputHook {
   public:
    void on_output(const HookContext& ctx, std::span<float> values) override {
      if (ctx.site.kind == LayerKind::kVProj && ctx.contains_position(0)) {
        ctx.row(values, 0)[0] = 1.5f;  // NaN-vulnerable; span starts at 0
      }
    }
  };
  const TransformerLM model = micro_model();
  const auto prompt = test_prompt();

  PlantValueHook plant;
  FaultPlan plan;
  plan.position = 0;
  plan.site = {0, LayerKind::kVProj};
  plan.neuron = 0;
  plan.flips.count = 1;
  plan.flips.bits[0] = f16::kExponentHigh;

  InjectorHook injector(plan);
  Ft2Protector protector(model);
  InferenceSession session(model);
  const auto plant_reg = session.hooks().add(plant);
  const auto injector_reg = session.hooks().add(injector);
  protector.attach(session);
  GenerateOptions opts;
  opts.max_new_tokens = 2;
  opts.eos_token = -1;
  session.generate(prompt, opts);

  ASSERT_TRUE(injector.fired());
  EXPECT_TRUE(std::isnan(injector.injected_value()));
  EXPECT_GE(protector.stats().nan_corrected, 1u);
}

}  // namespace
}  // namespace ft2
