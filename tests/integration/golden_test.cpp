// Golden determinism tests: lock down exact engine behaviour for fixed
// seeds so accidental numeric changes (kernel edits, quantization-point
// moves, RNG reordering) are caught immediately. If a change is
// INTENTIONAL, regenerate the constants by printing the new values from
// the failing assertion's inputs.
#include <gtest/gtest.h>

#include "core/ft2.hpp"

namespace ft2 {
namespace {

TEST(Golden, PhiloxStream) {
  PhiloxStream s(20250704, 0);
  EXPECT_EQ(s(), 3058979390u);
  EXPECT_EQ(s(), 2972109632u);
  EXPECT_EQ(s(), 1071703344u);
  EXPECT_EQ(s(), 2102941109u);
}

TEST(Golden, Xoshiro) {
  Xoshiro256 x(42);
  EXPECT_EQ(x(), 1546998764402558742ULL);
  EXPECT_EQ(x(), 6990951692964543102ULL);
}

TEST(Golden, F16Encodings) {
  EXPECT_EQ(f16::from_float(0.1f).bits(), 0x2e66u);
  EXPECT_EQ(f16::from_float(3.14159f).bits(), 0x4248u);
  EXPECT_EQ(f16::from_float(-1e-8f).bits(), 0x8000u);  // -0 after underflow
}

TEST(Golden, MicroModelGeneration) {
  // Engine output for a fixed random-weight Llama-style micro model. Locks
  // the full numeric pipeline: init RNG -> FP16 quantization points ->
  // attention/RoPE/norm kernels -> greedy decode.
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.vocab_size = 50;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 32;
  Xoshiro256 rng(123);
  const TransformerLM m(c, init_weights(c, rng));
  InferenceSession session(m);
  GenerateOptions opts;
  opts.max_new_tokens = 10;
  const auto r = session.generate(std::vector<int>{1, 2, 3, 4}, opts);
  EXPECT_EQ(r.tokens,
            (std::vector<int>{20, 15, 5, 14, 23, 12, 5, 14, 23, 12}));
}

TEST(Golden, FaultPlanSampling) {
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.vocab_size = 50;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  const FaultSiteSpace space(c);
  PhiloxStream rng(7, 3);
  const auto plan = space.sample(10, 8, FaultModel::kExponentBit,
                                 ValueType::kF16, rng);
  EXPECT_EQ(plan.position, 11u);
  EXPECT_EQ(plan.site.block, 0);
  EXPECT_EQ(plan.site.kind, LayerKind::kVProj);
  EXPECT_EQ(plan.neuron, 3u);
  EXPECT_EQ(plan.flips.bits[0], 12);
  EXPECT_FALSE(plan.in_first_token);
}

}  // namespace
}  // namespace ft2
