// Smoke tests against the trained, cached zoo checkpoints. These reproduce
// the paper's core ordering on real (trained) models; they are SKIPPED when
// no checkpoint cache is available (e.g. a pristine checkout running ctest
// before any bench/example has trained the zoo).
#include <gtest/gtest.h>

#include "core/ft2.hpp"
#include "fi/trace.hpp"

namespace ft2 {
namespace {

std::shared_ptr<const TransformerLM> load_if_cached(const std::string& name) {
  const std::string path = model_cache_dir() + "/" + name + ".ft2m";
  if (!checkpoint_exists(path)) return nullptr;
  return ensure_model(name, /*quiet=*/true);
}

TEST(TrainedZoo, ModelsAnswerQaCorrectly) {
  const auto model = load_if_cached("opt-sm");
  if (!model) GTEST_SKIP() << "no cached checkpoint (run examples/train_zoo)";
  const auto gen = make_generator(DatasetKind::kSynthQA);
  EXPECT_GE(evaluate_accuracy(*model, *gen, 30, 777), 0.9);
}

TEST(TrainedZoo, Ft2BeatsUnprotectedOnTrainedModel) {
  const auto model = load_if_cached("opt-sm");
  if (!model) GTEST_SKIP() << "no cached checkpoint (run examples/train_zoo)";

  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(20, 31415);
  auto inputs = prepare_eval_inputs(*model, samples, 10, true);
  ASSERT_GE(inputs.size(), 10u);
  inputs.resize(10);

  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = 50;
  config.gen_tokens = 10;

  const auto none =
      run_campaign(*model, inputs, SchemeKind::kNone, BoundStore{}, config);
  const auto ft2 =
      run_campaign(*model, inputs, SchemeKind::kFt2, BoundStore{}, config);
  EXPECT_GT(none.sdc, 0u);
  EXPECT_LT(ft2.sdc_rate(), none.sdc_rate())
      << "none=" << none.sdc << " ft2=" << ft2.sdc;
}

TEST(TrainedZoo, CriticalLayersDrawMoreSdcThanNonCritical) {
  const auto model = load_if_cached("gptj-sm");
  if (!model) GTEST_SKIP() << "no cached checkpoint (run examples/train_zoo)";

  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(16, 99);
  auto inputs = prepare_eval_inputs(*model, samples, 10, true);
  ASSERT_GE(inputs.size(), 8u);
  if (inputs.size() > 8) inputs.resize(8);

  // Trace an unprotected EXP campaign and split SDCs by criticality class.
  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = 120;
  config.gen_tokens = 10;

  TraceCollector trace;
  run_campaign(*model, inputs, SchemeKind::kNone, BoundStore{}, config,
               trace.callback());

  const auto crit = critical_layers(model->config());
  auto is_critical = [&crit](LayerKind k) {
    return std::find(crit.begin(), crit.end(), k) != crit.end();
  };
  std::size_t crit_faults = 0, crit_sdc = 0;
  std::size_t noncrit_faults = 0, noncrit_sdc = 0;
  for (const auto& r : trace.records()) {
    if (is_critical(r.plan.site.kind)) {
      ++crit_faults;
      if (r.outcome == Outcome::kSdc) ++crit_sdc;
    } else {
      ++noncrit_faults;
      if (r.outcome == Outcome::kSdc) ++noncrit_sdc;
    }
  }
  ASSERT_GT(crit_faults, 0u);
  ASSERT_GT(noncrit_faults, 0u);
  const double crit_rate =
      static_cast<double>(crit_sdc) / static_cast<double>(crit_faults);
  const double noncrit_rate =
      static_cast<double>(noncrit_sdc) / static_cast<double>(noncrit_faults);
  // Take-away #1: faults in critical layers cause SDCs more often.
  EXPECT_GT(crit_rate, noncrit_rate)
      << "critical " << crit_sdc << "/" << crit_faults << " vs non-critical "
      << noncrit_sdc << "/" << noncrit_faults;
}

}  // namespace
}  // namespace ft2
