// Fused-epilogue end-to-end equivalence: protected generation and full
// fault-injection campaigns must be bit-identical with the fused GEMM-store
// epilogue on and off. The fused path moves quantization and range
// restriction from post-GEMM sweeps into the kernel's store epilogue; this
// suite pins the "results never change" contract at the system level —
// tokens, per-kind protection stats, clip events, first-detect positions,
// protect.* counters, campaign outcomes and detection counts.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ft2.hpp"

namespace ft2 {
namespace {

/// Restores the fused switch and active tier on scope exit.
class FusedGuard {
 public:
  FusedGuard() : tier_(active_kernel_tier()), on_(fused_epilogue_enabled()) {}
  ~FusedGuard() {
    set_kernel_tier(tier_);
    set_fused_epilogue_enabled(on_);
  }

 private:
  KernelTier tier_;
  bool on_;
};

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 24;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 32;
  c.max_seq = 96;
  Xoshiro256 rng(77);
  return TransformerLM(c, init_weights(c, rng));
}

std::vector<int> test_prompt() {
  const auto gen = make_generator(DatasetKind::kSynthQA);
  Xoshiro256 rng(3);
  const Sample s = gen->generate(rng);
  std::vector<int> prompt = {Vocab::kBos};
  prompt.insert(prompt.end(), s.prompt_tokens.begin(), s.prompt_tokens.end());
  return prompt;
}

/// Artificially tight bounds at every site of the spec's coverage so a
/// clean generation clips constantly — the fused kernel's dirty-lane slow
/// path and event recording get exercised hard, not just the clean path.
BoundStore tight_bounds(const TransformerLM& model, const SchemeSpec& spec) {
  BoundStore bounds(model.config());
  for (std::size_t b = 0; b < model.config().n_blocks; ++b) {
    for (LayerKind k : spec.covered) {
      Bounds& site = bounds.at(LayerSite{static_cast<int>(b), k});
      site.lo = -0.01f;
      site.hi = 0.01f;
      site.typical = 0.0f;
    }
  }
  return bounds;
}

struct ProtectedRun {
  GenerateResult result;
  std::array<ProtectionStats, kLayerKindCount> kind_stats;
  std::vector<ClipEvent> clips;
  long long first_detect = -1;
  MetricsSnapshot metrics;
  std::size_t online_valid = 0;
};

ProtectedRun run_protected(const TransformerLM& model, SchemeKind scheme,
                           bool fused) {
  FusedGuard guard;
  set_fused_epilogue_enabled(fused);
  const auto spec = scheme_spec(scheme, model.config());
  BoundStore bounds;
  if (spec.needs_offline_bounds) bounds = tight_bounds(model, spec);

  MetricsRegistry metrics;
  ProtectionHook hook(model.config(), spec, std::move(bounds), &metrics);
  hook.set_clip_capture(true);

  InferenceSession session(model);
  const auto reg = session.hooks().add(hook);
  GenerateOptions opts;
  opts.max_new_tokens = 8;
  opts.eos_token = -1;

  ProtectedRun run;
  run.result = session.generate(test_prompt(), opts);
  for (std::size_t k = 0; k < kLayerKindCount; ++k) {
    run.kind_stats[k] = hook.stats(static_cast<LayerKind>(k));
  }
  run.clips = hook.clip_events();
  run.first_detect = hook.first_detect_position();
  run.metrics = metrics.snapshot();
  run.online_valid = hook.online_bounds().valid_count();
  return run;
}

void expect_runs_identical(const ProtectedRun& a, const ProtectedRun& b) {
  EXPECT_EQ(a.result.tokens, b.result.tokens);
  EXPECT_EQ(a.result.positions_run, b.result.positions_run);
  for (std::size_t k = 0; k < kLayerKindCount; ++k) {
    EXPECT_EQ(a.kind_stats[k].values_checked, b.kind_stats[k].values_checked)
        << layer_kind_name(static_cast<LayerKind>(k));
    EXPECT_EQ(a.kind_stats[k].nan_corrected, b.kind_stats[k].nan_corrected)
        << layer_kind_name(static_cast<LayerKind>(k));
    EXPECT_EQ(a.kind_stats[k].oob_corrected, b.kind_stats[k].oob_corrected)
        << layer_kind_name(static_cast<LayerKind>(k));
  }
  EXPECT_EQ(a.first_detect, b.first_detect);
  EXPECT_EQ(a.online_valid, b.online_valid);
  ASSERT_EQ(a.clips.size(), b.clips.size());
  for (std::size_t i = 0; i < a.clips.size(); ++i) {
    EXPECT_EQ(a.clips[i].kind, b.clips[i].kind) << "clip " << i;
    EXPECT_EQ(a.clips[i].position, b.clips[i].position) << "clip " << i;
    EXPECT_EQ(f32_bits(a.clips[i].original), f32_bits(b.clips[i].original))
        << "clip " << i;
  }
  // protect.* counters (and every other metric) advance identically.
  ASSERT_EQ(a.metrics.counters.size(), b.metrics.counters.size());
  for (std::size_t i = 0; i < a.metrics.counters.size(); ++i) {
    EXPECT_EQ(a.metrics.counters[i].name, b.metrics.counters[i].name);
    EXPECT_EQ(a.metrics.counters[i].value, b.metrics.counters[i].value)
        << a.metrics.counters[i].name;
  }
}

TEST(FusedEpilogue, OfflineProtectedGenerationIdenticalFusedOnOff) {
  const TransformerLM model = micro_model();
  const ProtectedRun fused = run_protected(model, SchemeKind::kFt2Offline,
                                           /*fused=*/true);
  const ProtectedRun hook_path = run_protected(model, SchemeKind::kFt2Offline,
                                               /*fused=*/false);
  // The tight bounds must actually clip, or this test proves nothing.
  std::size_t total_oob = 0;
  for (const auto& s : fused.kind_stats) total_oob += s.oob_corrected;
  ASSERT_GT(total_oob, 0u) << "tight bounds produced no clips";
  ASSERT_FALSE(fused.clips.empty());
  expect_runs_identical(fused, hook_path);
}

TEST(FusedEpilogue, OnlineFt2GenerationIdenticalFusedOnOff) {
  // FT2 online: the first-token phase observes bounds through the fused
  // absorb path (post-correction values, flat order) — online bounds, the
  // protection they drive afterwards, and all accounting must match the
  // hook path exactly.
  const TransformerLM model = micro_model();
  const ProtectedRun fused = run_protected(model, SchemeKind::kFt2,
                                           /*fused=*/true);
  const ProtectedRun hook_path = run_protected(model, SchemeKind::kFt2,
                                               /*fused=*/false);
  ASSERT_GT(fused.online_valid, 0u) << "first-token phase observed no bounds";
  expect_runs_identical(fused, hook_path);
}

TEST(FusedEpilogue, DetectOnlySchemeIdenticalFusedOnOff) {
  // detect_only: violations are counted but values pass through unchanged.
  const TransformerLM model = micro_model();
  FusedGuard guard;
  auto run = [&](bool fused) {
    set_fused_epilogue_enabled(fused);
    auto spec = scheme_spec(SchemeKind::kFt2Offline, model.config());
    spec.detect_only = true;
    ProtectionHook hook(model.config(), spec, tight_bounds(model, spec));
    InferenceSession session(model);
    const auto reg = session.hooks().add(hook);
    GenerateOptions opts;
    opts.max_new_tokens = 6;
    opts.eos_token = -1;
    const auto result = session.generate(test_prompt(), opts);
    return std::make_pair(result.tokens, hook.stats());
  };
  const auto fused = run(true);
  const auto hook_path = run(false);
  EXPECT_EQ(fused.first, hook_path.first);
  ASSERT_GT(fused.second.oob_corrected, 0u);
  EXPECT_EQ(fused.second.values_checked, hook_path.second.values_checked);
  EXPECT_EQ(fused.second.nan_corrected, hook_path.second.nan_corrected);
  EXPECT_EQ(fused.second.oob_corrected, hook_path.second.oob_corrected);
}

TEST(FusedEpilogue, CampaignOutcomesIdenticalFusedOnOff) {
  // Campaigns register the injector hook ahead of the protection hook, so
  // fused planning structurally falls back to the hook path at injected
  // sites — but the fault-free prefix recording and every non-first-hook
  // interaction still route through the fused engine paths. Outcomes,
  // detections and per-trial records must not move.
  const TransformerLM model = micro_model();
  const auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(3, 5);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  const auto spec = scheme_spec(SchemeKind::kFt2, model.config());

  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = 10;
  config.gen_tokens = 6;

  FusedGuard guard;
  auto run = [&] {
    std::vector<TrialRecord> trace;
    const CampaignResult result = run_campaign(
        model, inputs, spec, BoundStore{}, config,
        [&](const TrialRecord& r) { trace.push_back(r); });
    std::sort(trace.begin(), trace.end(),
              [](const TrialRecord& a, const TrialRecord& b) {
                return a.trial < b.trial;
              });
    return std::make_pair(result, std::move(trace));
  };
  set_fused_epilogue_enabled(true);
  const auto fused = run();
  set_fused_epilogue_enabled(false);
  const auto hook_path = run();

  EXPECT_EQ(fused.first.trials, hook_path.first.trials);
  EXPECT_EQ(fused.first.sdc, hook_path.first.sdc);
  EXPECT_EQ(fused.first.masked_identical, hook_path.first.masked_identical);
  EXPECT_EQ(fused.first.masked_semantic, hook_path.first.masked_semantic);
  EXPECT_EQ(fused.first.not_injected, hook_path.first.not_injected);
  ASSERT_EQ(fused.second.size(), hook_path.second.size());
  for (std::size_t t = 0; t < fused.second.size(); ++t) {
    EXPECT_EQ(fused.second[t].outcome, hook_path.second[t].outcome)
        << "trial " << t;
    EXPECT_EQ(fused.second[t].detections, hook_path.second[t].detections)
        << "trial " << t;
    EXPECT_EQ(fused.second[t].detect_position,
              hook_path.second[t].detect_position)
        << "trial " << t;
    EXPECT_EQ(fused.second[t].generated_text, hook_path.second[t].generated_text)
        << "trial " << t;
  }
}

TEST(FusedEpilogue, TierSwitchKeepsProtectedGenerationIdentical) {
  // Cross-tier x fused: the same protected generation on every supported
  // tier, fused on, must match the SSE hook-path reference token for token
  // and count for count.
  const TransformerLM model = micro_model();
  FusedGuard guard;
  set_kernel_tier(KernelTier::kSse);
  const ProtectedRun reference = run_protected(model, SchemeKind::kFt2Offline,
                                               /*fused=*/false);
  for (KernelTier tier : supported_kernel_tiers()) {
    set_kernel_tier(tier);
    const ProtectedRun fused = run_protected(model, SchemeKind::kFt2Offline,
                                             /*fused=*/true);
    SCOPED_TRACE(kernel_tier_name(tier));
    expect_runs_identical(fused, reference);
  }
}

}  // namespace
}  // namespace ft2
