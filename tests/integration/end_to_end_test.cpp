// End-to-end integration: train a micro model from scratch, verify it
// answers the task, then reproduce the paper's core claim in miniature —
// FT2 (online, first-token bounds, critical layers only) substantially
// reduces the SDC rate of EXP-model fault injection at a protection cost
// of zero offline profiling.
#include <gtest/gtest.h>

#include "core/ft2.hpp"

namespace ft2 {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ModelConfig c;
    c.name = "e2e";
    c.arch = ArchFamily::kLlama;
    c.norm = NormKind::kRmsNorm;
    c.position = PositionKind::kRotary;
    c.activation = Activation::kSilu;
    c.linear_bias = false;
    c.vocab_size = Vocab::shared().size();
    c.d_model = 40;
    c.n_heads = 4;
    c.n_blocks = 2;
    c.d_ff = 80;
    c.max_seq = 96;
    Xoshiro256 rng(77);
    model_ = new TransformerLM(c, init_weights(c, rng));

    const auto gen = make_generator(DatasetKind::kSynthQA);
    TrainerConfig tc;
    tc.steps = 2000;
    tc.peak_lr = 3e-3f;
    tc.eval_every = 200;
    tc.min_steps = 600;
    tc.eval_samples = 32;
    tc.target_accuracy = 0.97;
    tc.seed = 7;
    report_ = train_model(*model_, {gen.get()}, tc);
  }

  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  static TransformerLM* model_;
  static TrainReport report_;
};

TransformerLM* EndToEnd::model_ = nullptr;
TrainReport EndToEnd::report_;

TEST_F(EndToEnd, TrainingReachesHighAccuracy) {
  EXPECT_GE(report_.final_accuracy, 0.9) << "micro model failed to learn QA";
}

TEST_F(EndToEnd, Ft2ReducesSdcRate) {
  const auto gen = make_generator(DatasetKind::kSynthQA);
  const auto samples = gen->generate_many(24, 123);
  auto inputs = prepare_eval_inputs(*model_, samples, 10, true);
  ASSERT_GE(inputs.size(), 8u);
  if (inputs.size() > 10) inputs.resize(10);

  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = 60;
  config.gen_tokens = 10;

  const auto none =
      run_campaign(*model_, inputs, SchemeKind::kNone, BoundStore{}, config);
  const auto ft2 =
      run_campaign(*model_, inputs, SchemeKind::kFt2, BoundStore{}, config);

  // The paper's headline: a large relative SDC reduction. At this trial
  // count we assert a conservative factor-of-2.
  EXPECT_GT(none.sdc, 0u) << "EXP faults never caused SDCs — campaign broken?";
  EXPECT_LT(ft2.sdc_rate(), none.sdc_rate() * 0.55)
      << "none=" << none.sdc << "/" << none.trials << " ft2=" << ft2.sdc
      << "/" << ft2.trials;
}

TEST_F(EndToEnd, Ft2ProtectorFacadeWorks) {
  const auto gen = make_generator(DatasetKind::kSynthQA);
  Xoshiro256 rng(5);
  const Sample sample = gen->generate(rng);
  std::vector<int> prompt = {Vocab::kBos};
  prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                sample.prompt_tokens.end());

  InferenceSession session(*model_);
  Ft2Protector protector(*model_);
  protector.attach(session);

  GenerateOptions opts;
  opts.max_new_tokens = 10;
  opts.eos_token = Vocab::kEos;
  const auto out = session.generate(prompt, opts);

  // Online bounds were captured for every critical site during prefill.
  for (LayerKind kind : protector.critical()) {
    for (std::size_t b = 0; b < model_->config().n_blocks; ++b) {
      EXPECT_TRUE(protector.online_bounds()
                      .at({static_cast<int>(b), kind})
                      .valid())
          << layer_kind_name(kind) << " block " << b;
    }
  }
  EXPECT_EQ(protector.bound_memory_bytes(),
            protector.critical().size() * model_->config().n_blocks * 8);

  // Protection must not change fault-free behaviour.
  InferenceSession bare(*model_);
  const auto reference = bare.generate(prompt, opts);
  EXPECT_EQ(out.tokens, reference.tokens);
}

TEST_F(EndToEnd, OfflineAndOnlineBoundsAgreeRoughly) {
  // Take-away #7: first-token bounds approximate offline-profiled bounds.
  const auto gen = make_generator(DatasetKind::kSynthQA);
  OfflineProfileOptions profile;
  profile.n_inputs = 8;
  profile.seed = 99;
  profile.max_new_tokens = 10;
  const BoundStore offline = profile_offline_bounds(*model_, *gen, profile);

  Xoshiro256 rng(17);
  const Sample sample = gen->generate(rng);
  std::vector<int> prompt = {Vocab::kBos};
  prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                sample.prompt_tokens.end());
  InferenceSession session(*model_);
  Ft2Protector protector(*model_);
  protector.attach(session);
  GenerateOptions opts;
  opts.max_new_tokens = 10;
  session.generate(prompt, opts);

  for (LayerKind kind : protector.critical()) {
    const Bounds& on = protector.online_bounds().at({0, kind});
    const Bounds& off = offline.at({0, kind});
    ASSERT_TRUE(on.valid());
    ASSERT_TRUE(off.valid());
    // Same order of magnitude: the online width is within [1/4, 1.5] of the
    // offline width (narrower because it saw a single input; it can exceed
    // slightly because its prompt is not in the profiling set).
    const float on_width = on.hi - on.lo;
    const float off_width = off.hi - off.lo;
    EXPECT_GE(on_width, off_width / 4.0f) << layer_kind_name(kind);
    EXPECT_LE(on_width, off_width * 1.5f) << layer_kind_name(kind);
  }
}

}  // namespace
}  // namespace ft2
