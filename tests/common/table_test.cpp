#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace ft2 {
namespace {

TEST(Table, BuildsRowsViaCells) {
  Table t({"model", "sdc"});
  t.begin_row().cell("opt-sm").pct(0.0123);
  t.begin_row().cell("llama-sm").pct(0.0009, 3);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.row(0)[1], "1.23%");
  EXPECT_EQ(t.row(1)[1], "0.090%");
}

TEST(Table, NumAndCountFormatting) {
  Table t({"a", "b"});
  t.begin_row().num(3.14159, 2).count(42);
  EXPECT_EQ(t.row(0)[0], "3.14");
  EXPECT_EQ(t.row(0)[1], "42");
}

TEST(Table, AddRowValidatesWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  t.add_row({"x", "y"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"long-name-here", "1"});
  t.add_row({"s", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name-here"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "x"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), Error);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::format(1.23456, 3), "1.235");
  EXPECT_EQ(Table::format_pct(0.5, 1), "50.0%");
  EXPECT_EQ(Table::format_pct(0.00123, 2), "0.12%");
}

}  // namespace
}  // namespace ft2
