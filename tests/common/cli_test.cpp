#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ft2 {
namespace {

ArgParser parse(std::vector<const char*> argv,
                std::map<std::string, bool> spec) {
  return ArgParser(static_cast<int>(argv.size()), argv.data(),
                   std::move(spec));
}

TEST(Cli, PositionalAndOptions) {
  const auto args = parse({"opt-sm", "--dataset", "synthqa", "--protect"},
                          {{"dataset", true}, {"protect", false}});
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "opt-sm");
  EXPECT_EQ(args.get("dataset", "x"), "synthqa");
  EXPECT_TRUE(args.has("protect"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, EqualsSyntax) {
  const auto args = parse({"--trials=250", "--rate=0.5"},
                          {{"trials", true}, {"rate", true}});
  EXPECT_EQ(args.get_size("trials", 0), 250u);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = parse({}, {{"trials", true}});
  EXPECT_EQ(args.get_size("trials", 7), 7u);
  EXPECT_EQ(args.get("trials", "d"), "d");
  EXPECT_DOUBLE_EQ(args.get_double("trials", 1.5), 1.5);
}

TEST(Cli, UnknownOptionThrows) {
  EXPECT_THROW(parse({"--bogus"}, {{"known", false}}), Error);
}

TEST(Cli, MissingValueThrows) {
  EXPECT_THROW(parse({"--dataset"}, {{"dataset", true}}), Error);
}

TEST(Cli, FlagWithValueThrows) {
  EXPECT_THROW(parse({"--protect=1"}, {{"protect", false}}), Error);
}

TEST(Cli, MultiplePositionals) {
  const auto args = parse({"a", "--k", "v", "b"}, {{"k", true}});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "a");
  EXPECT_EQ(args.positional()[1], "b");
}

}  // namespace
}  // namespace ft2
