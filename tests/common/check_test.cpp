#include "common/check.hpp"

#include <gtest/gtest.h>

namespace ft2 {
namespace {

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(FT2_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(FT2_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailureThrowsWithLocation) {
  try {
    FT2_CHECK(2 > 3);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(Check, MessageStreamingWorks) {
  const int value = 42;
  try {
    FT2_CHECK_MSG(value < 10, "value was " << value << " (limit 10)");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value was 42 (limit 10)"), std::string::npos);
  }
}

TEST(Check, ErrorIsARuntimeError) {
  // Callers may catch std::exception generically.
  try {
    throw Error("boom");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto count = [&calls] {
    ++calls;
    return true;
  };
  FT2_CHECK(count());
  EXPECT_EQ(calls, 1);
  FT2_CHECK_MSG(count(), "msg");
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace ft2
