#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ft2 {
namespace {

TEST(Env, StringFallbackAndOverride) {
  ::unsetenv("FT2_TEST_STR");
  EXPECT_EQ(env_string("FT2_TEST_STR", "dflt"), "dflt");
  ::setenv("FT2_TEST_STR", "hello", 1);
  EXPECT_EQ(env_string("FT2_TEST_STR", "dflt"), "hello");
  ::setenv("FT2_TEST_STR", "", 1);
  EXPECT_EQ(env_string("FT2_TEST_STR", "dflt"), "dflt");
  ::unsetenv("FT2_TEST_STR");
}

TEST(Env, SizeParsing) {
  ::setenv("FT2_TEST_SZ", "12345", 1);
  EXPECT_EQ(env_size("FT2_TEST_SZ", 7), 12345u);
  ::setenv("FT2_TEST_SZ", "not-a-number", 1);
  EXPECT_EQ(env_size("FT2_TEST_SZ", 7), 7u);
  ::unsetenv("FT2_TEST_SZ");
  EXPECT_EQ(env_size("FT2_TEST_SZ", 7), 7u);
}

TEST(Env, DoubleParsing) {
  ::setenv("FT2_TEST_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("FT2_TEST_D", 1.0), 2.5);
  ::unsetenv("FT2_TEST_D");
  EXPECT_DOUBLE_EQ(env_double("FT2_TEST_D", 1.0), 1.0);
}

TEST(Env, FlagParsing) {
  for (const char* truthy : {"1", "true", "YES", "On"}) {
    ::setenv("FT2_TEST_F", truthy, 1);
    EXPECT_TRUE(env_flag("FT2_TEST_F", false)) << truthy;
  }
  for (const char* falsy : {"0", "false", "off", "banana"}) {
    ::setenv("FT2_TEST_F", falsy, 1);
    EXPECT_FALSE(env_flag("FT2_TEST_F", true)) << falsy;
  }
  ::unsetenv("FT2_TEST_F");
  EXPECT_TRUE(env_flag("FT2_TEST_F", true));
}

}  // namespace
}  // namespace ft2
