#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace ft2 {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::size_t{7}).dump(), "7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(INFINITY).dump(), "null");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["apple"] = 2;
  const std::string s = j.dump(-1);
  EXPECT_EQ(s, "{\"zebra\": 1,\"apple\": 2}");
}

TEST(Json, NestedStructures) {
  Json j = Json::object();
  j["name"] = "ft2";
  j["results"] = Json::array();
  Json row = Json::object();
  row["sdc"] = 3;
  row["rate"] = 0.01;
  j["results"].push_back(std::move(row));
  j["results"].push_back(Json(false));
  EXPECT_EQ(j["results"].size(), 2u);
  const std::string s = j.dump(-1);
  EXPECT_NE(s.find("\"sdc\": 3"), std::string::npos);
  EXPECT_NE(s.find("false"), std::string::npos);
}

TEST(Json, PrettyPrintIndents) {
  Json j = Json::object();
  j["a"] = 1;
  const std::string s = j.dump(2);
  EXPECT_EQ(s, "{\n  \"a\": 1\n}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(), "{}");
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Json::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(Json::escape("tab\there"), "tab\\there");
  EXPECT_EQ(Json::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(Json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, TypeMisuseThrows) {
  Json scalar(1);
  EXPECT_THROW(scalar["x"], Error);
  EXPECT_THROW(scalar.push_back(Json(2)), Error);
  Json arr = Json::array();
  EXPECT_THROW(arr["x"], Error);
}

TEST(Json, OperatorIndexReassigns) {
  Json j = Json::object();
  j["k"] = 1;
  j["k"] = "two";
  EXPECT_EQ(j.dump(-1), "{\"k\": \"two\"}");
  EXPECT_EQ(j.size(), 1u);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_double(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e3").as_double(), -2500.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  Json j = Json::object();
  j["name"] = "ft2 \"quoted\"\n";
  j["pi"] = 3.25;
  j["n"] = -17;
  j["ok"] = true;
  j["none"] = Json();
  j["list"] = Json::array();
  j["list"].push_back(Json(1));
  j["list"].push_back(Json("two"));
  Json nested = Json::object();
  nested["k"] = 0.5;
  j["list"].push_back(std::move(nested));

  for (int indent : {-1, 2}) {
    const Json back = Json::parse(j.dump(indent));
    EXPECT_EQ(back.dump(-1), j.dump(-1)) << "indent=" << indent;
  }
}

TEST(JsonParse, PreservesObjectOrderAndAccessors) {
  const Json j = Json::parse("{\"zebra\": 1, \"apple\": {\"x\": [10, 20]}}");
  EXPECT_EQ(j.keys(), (std::vector<std::string>{"zebra", "apple"}));
  EXPECT_DOUBLE_EQ(j.at("zebra").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(j.at("apple").at("x").at(1).as_double(), 20.0);
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_THROW(j.at("missing"), Error);
  EXPECT_THROW(j.at("apple").at("x").at(2), Error);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse("\"a\\\"b\\\\c\\n\\t\\u0041\"").as_string(),
            "a\"b\\c\n\tA");
  // \u escapes above ASCII decode to UTF-8.
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(Json::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
}

TEST(JsonParse, TypeMismatchThrows) {
  const Json j = Json::parse("{\"a\": 1}");
  EXPECT_THROW(j.as_double(), Error);
  EXPECT_THROW(j.at("a").as_string(), Error);
  EXPECT_THROW(j.at("a").as_bool(), Error);
  EXPECT_THROW(j.at(std::size_t{0}), Error);  // object, not array
}

TEST(JsonParse, MalformedInputThrows) {
  const char* bad[] = {
      "",          "{",           "[1,",      "{\"a\":}",   "tru",
      "01x",       "\"unclosed",  "\"\\q\"",  "\"\\u12g4\"", "[1] extra",
      "{\"a\" 1}", "[1 2]",       "nan",
  };
  for (const char* text : bad) {
    EXPECT_THROW(Json::parse(text), Error) << "input: " << text;
  }
}

TEST(JsonParse, DepthLimit) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(Json::parse(deep), Error);
  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_NO_THROW(Json::parse(ok));
}

}  // namespace
}  // namespace ft2
