#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace ft2 {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::size_t{7}).dump(), "7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(INFINITY).dump(), "null");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["apple"] = 2;
  const std::string s = j.dump(-1);
  EXPECT_EQ(s, "{\"zebra\": 1,\"apple\": 2}");
}

TEST(Json, NestedStructures) {
  Json j = Json::object();
  j["name"] = "ft2";
  j["results"] = Json::array();
  Json row = Json::object();
  row["sdc"] = 3;
  row["rate"] = 0.01;
  j["results"].push_back(std::move(row));
  j["results"].push_back(Json(false));
  EXPECT_EQ(j["results"].size(), 2u);
  const std::string s = j.dump(-1);
  EXPECT_NE(s.find("\"sdc\": 3"), std::string::npos);
  EXPECT_NE(s.find("false"), std::string::npos);
}

TEST(Json, PrettyPrintIndents) {
  Json j = Json::object();
  j["a"] = 1;
  const std::string s = j.dump(2);
  EXPECT_EQ(s, "{\n  \"a\": 1\n}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(), "{}");
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Json::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(Json::escape("tab\there"), "tab\\there");
  EXPECT_EQ(Json::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(Json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, TypeMisuseThrows) {
  Json scalar(1);
  EXPECT_THROW(scalar["x"], Error);
  EXPECT_THROW(scalar.push_back(Json(2)), Error);
  Json arr = Json::array();
  EXPECT_THROW(arr["x"], Error);
}

TEST(Json, OperatorIndexReassigns) {
  Json j = Json::object();
  j["k"] = 1;
  j["k"] = "two";
  EXPECT_EQ(j.dump(-1), "{\"k\": \"two\"}");
  EXPECT_EQ(j.size(), 1u);
}

}  // namespace
}  // namespace ft2
