#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ft2 {
namespace {

TEST(Xoshiro, DeterministicFromSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 10; ++i) {
    if (a2() != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Xoshiro, UniformInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  // All residues hit eventually.
  std::set<std::uint64_t> seen;
  Xoshiro256 rng2(2);
  for (int i = 0; i < 1000; ++i) seen.insert(rng2.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256 rng(4);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Philox, SameStreamSameSequence) {
  PhiloxStream a(99, 5), b(99, 5);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Philox, DifferentStreamsDiffer) {
  PhiloxStream a(99, 5), b(99, 6), c(100, 5);
  int same_ab = 0, same_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const auto va = a();
    if (va == b()) ++same_ab;
    if (va == c()) ++same_ac;
  }
  EXPECT_LT(same_ab, 3);
  EXPECT_LT(same_ac, 3);
}

TEST(Philox, StreamsIndependentOfDrawOrder) {
  // Drawing from stream 7 must not perturb stream 8.
  PhiloxStream s8_fresh(1, 8);
  std::vector<std::uint32_t> expected;
  for (int i = 0; i < 16; ++i) expected.push_back(s8_fresh());

  PhiloxStream s7(1, 7), s8(1, 8);
  for (int i = 0; i < 100; ++i) s7();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(s8(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(Philox, UniformBounds) {
  PhiloxStream s(5, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = s.uniform(13);
    EXPECT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u);
}

TEST(Philox, Known10RoundVector) {
  // Reference vector from the Random123 distribution (philox4x32-10):
  // counter = ffffffff..., key = ffffffff... .
  Philox4x32::Counter ctr = {0xffffffffu, 0xffffffffu, 0xffffffffu,
                             0xffffffffu};
  Philox4x32::Key key = {0xffffffffu, 0xffffffffu};
  const auto out = Philox4x32::round10(ctr, key);
  EXPECT_EQ(out[0], 0x408f276du);
  EXPECT_EQ(out[1], 0x41c83b0eu);
  EXPECT_EQ(out[2], 0xa20bc7c6u);
  EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(SplitMix, KnownSequenceDeterministic) {
  std::uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

}  // namespace
}  // namespace ft2
