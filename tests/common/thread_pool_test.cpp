#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/check.hpp"

namespace ft2 {
namespace {

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadInlineMode) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);  // inline mode spawns no workers
  int sum = 0;
  pool.parallel_for(5, 10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 5 + 6 + 7 + 8 + 9);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(3, 3, [&](std::size_t) { called = true; });
  pool.parallel_for(5, 2, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 31) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  // parallel_for acts as a barrier for queued work on the same pool only if
  // workers pick it up; poll briefly instead.
  for (int i = 0; i < 1000 && !ran; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::atomic<std::size_t> sum{0};
  parallel_for(0, 64, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 64u * 63u / 2u);
}

TEST(ThreadPool, LargeRangeChunking) {
  ThreadPool pool(7);
  std::vector<std::atomic<char>> seen(100001);
  pool.parallel_for(1, 100001, [&](std::size_t i) { seen[i] = 1; });
  std::size_t count = 0;
  for (std::size_t i = 1; i < seen.size(); ++i) count += seen[i] ? 1 : 0;
  EXPECT_EQ(count, 100000u);
}

}  // namespace
}  // namespace ft2
