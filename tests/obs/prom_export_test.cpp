// Prometheus exposition tests: name sanitization, trailing-component
// label folding, cumulative bucket monotonicity ending in +Inf, NaN/Inf
// gauge literals, HELP/TYPE lines from the catalog, and a round-trip of
// the exposition through a snapshot rebuilt from JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prom_export.hpp"

namespace ft2 {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(PromExport, SeriesSanitizesDottedNames) {
  const PromSeries s = prom_series_for("serve.queue.wait_ms");
  EXPECT_EQ(s.family, "ft2_serve_queue_wait_ms");
  EXPECT_TRUE(s.label_key.empty());
}

TEST(PromExport, SeriesFoldsLayerKindIntoLabel) {
  const PromSeries s = prom_series_for("protect.oob.V_PROJ");
  EXPECT_EQ(s.family, "ft2_protect_oob");
  EXPECT_EQ(s.label_key, "kind");
  EXPECT_EQ(s.label_value, "V_PROJ");
}

TEST(PromExport, SeriesFoldsOutcomeIntoLabel) {
  const PromSeries s = prom_series_for("campaign.outcome.sdc");
  EXPECT_EQ(s.family, "ft2_campaign_outcome");
  EXPECT_EQ(s.label_key, "outcome");
  EXPECT_EQ(s.label_value, "sdc");
}

TEST(PromExport, SeriesFoldsShardIndexIntoLabel) {
  const PromSeries s = prom_series_for("campaign.shard.progress.2");
  EXPECT_EQ(s.family, "ft2_campaign_shard_progress");
  EXPECT_EQ(s.label_key, "shard");
  EXPECT_EQ(s.label_value, "2");
}

TEST(PromExport, SeriesKeepsNonLabelTail) {
  // A trailing component that is neither a kind, an outcome, nor a number
  // stays part of the family name.
  const PromSeries s = prom_series_for("campaign.trials");
  EXPECT_EQ(s.family, "ft2_campaign_trials");
  EXPECT_TRUE(s.label_key.empty());
}

TEST(PromExport, ValueFormatsSpecials) {
  EXPECT_EQ(prom_value(std::numeric_limits<double>::quiet_NaN()), "NaN");
  EXPECT_EQ(prom_value(std::numeric_limits<double>::infinity()), "+Inf");
  EXPECT_EQ(prom_value(-std::numeric_limits<double>::infinity()), "-Inf");
  EXPECT_EQ(prom_value(0.0), "0");
  EXPECT_EQ(prom_value(2.5), "2.5");
  // Shortest round-trip: 0.1 renders as "0.1", not 0.1000000000000000055.
  EXPECT_EQ(prom_value(0.1), "0.1");
}

TEST(PromExport, CounterGetsTotalSuffixAndHelp) {
  MetricsRegistry reg;
  reg.counter("campaign.trials").inc(7);
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_TRUE(contains(text, "# TYPE ft2_campaign_trials_total counter"));
  EXPECT_TRUE(contains(text, "ft2_campaign_trials_total 7\n"));
  // Cataloged name => HELP line present.
  EXPECT_TRUE(contains(text, "# HELP ft2_campaign_trials_total "));
}

TEST(PromExport, UncatalogedMetricExportsWithoutHelp) {
  MetricsRegistry reg;
  reg.counter("no.such.metric").inc(1);
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_TRUE(contains(text, "ft2_no_such_metric_total 1\n"));
  EXPECT_FALSE(contains(text, "# HELP ft2_no_such_metric_total"));
}

TEST(PromExport, KindExpansionsShareOneFamily) {
  MetricsRegistry reg;
  reg.counter("protect.oob.V_PROJ").inc(2);
  reg.counter("protect.oob.FC1").inc(3);
  const std::string text = prometheus_text(reg.snapshot());
  // One TYPE line, two labelled series.
  std::size_t type_lines = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ft2_protect_oob_total", 0) == 0) ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_TRUE(contains(text, "ft2_protect_oob_total{kind=\"FC1\"} 3\n"));
  EXPECT_TRUE(contains(text, "ft2_protect_oob_total{kind=\"V_PROJ\"} 2\n"));
}

TEST(PromExport, GaugeSpecialsUsePrometheusLiterals) {
  MetricsRegistry reg;
  reg.gauge("weird.nan").set(std::numeric_limits<double>::quiet_NaN());
  reg.gauge("weird.pinf").set(std::numeric_limits<double>::infinity());
  reg.gauge("weird.ninf").set(-std::numeric_limits<double>::infinity());
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_TRUE(contains(text, "ft2_weird_nan NaN\n"));
  EXPECT_TRUE(contains(text, "ft2_weird_pinf +Inf\n"));
  EXPECT_TRUE(contains(text, "ft2_weird_ninf -Inf\n"));
}

TEST(PromExport, HistogramBucketsAreCumulativeEndingInInf) {
  MetricsRegistry reg;
  const std::vector<double> uppers = {1.0, 2.0, 4.0};
  HistogramMetric h = reg.histogram("lat.ms", uppers);
  h.observe(0.5);   // bucket le=1
  h.observe(1.5);   // bucket le=2
  h.observe(3.0);   // bucket le=4
  h.observe(100.0);  // overflow
  h.observe(std::numeric_limits<double>::quiet_NaN());  // excluded

  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_TRUE(contains(text, "# TYPE ft2_lat_ms histogram"));
  EXPECT_TRUE(contains(text, "ft2_lat_ms_bucket{le=\"1\"} 1\n"));
  EXPECT_TRUE(contains(text, "ft2_lat_ms_bucket{le=\"2\"} 2\n"));
  EXPECT_TRUE(contains(text, "ft2_lat_ms_bucket{le=\"4\"} 3\n"));
  // +Inf bucket equals the finite count (NaN excluded), == _count.
  EXPECT_TRUE(contains(text, "ft2_lat_ms_bucket{le=\"+Inf\"} 4\n"));
  EXPECT_TRUE(contains(text, "ft2_lat_ms_count 4\n"));
  EXPECT_TRUE(contains(text, "ft2_lat_ms_sum 105\n"));

  // Monotonicity: each successive bucket count must be >= the previous.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t prev = 0;
  std::size_t bucket_lines = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("ft2_lat_ms_bucket", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const std::uint64_t value = std::stoull(line.substr(space + 1));
    EXPECT_GE(value, prev) << line;
    prev = value;
    ++bucket_lines;
  }
  EXPECT_EQ(bucket_lines, 4u);
}

TEST(PromExport, LabelledHistogramSplicesLeIntoLabelSet) {
  MetricsRegistry reg;
  const std::vector<double> uppers = {10.0};
  reg.histogram("protect.clip_mag.FC2", uppers).observe(5.0);
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_TRUE(contains(
      text, "ft2_protect_clip_mag_bucket{kind=\"FC2\",le=\"10\"} 1\n"));
  EXPECT_TRUE(contains(text, "ft2_protect_clip_mag_sum{kind=\"FC2\"} 5\n"));
  EXPECT_TRUE(contains(text, "ft2_protect_clip_mag_count{kind=\"FC2\"} 1\n"));
}

TEST(PromExport, RoundTripThroughSnapshotJson) {
  // A snapshot serialized to JSON (what a shard frame or /snapshot.json
  // carries), rebuilt with from_json, must render the exact same
  // exposition — the parent's merged /metrics view depends on it.
  MetricsRegistry reg;
  reg.counter("campaign.trials").inc(123);
  reg.counter("campaign.outcome.sdc").inc(4);
  reg.gauge("campaign.progress.done").set(123.0);
  const std::vector<double> uppers = {1.0, 8.0};
  HistogramMetric h = reg.histogram("campaign.trial_ms", uppers);
  h.observe(0.5);
  h.observe(6.0);

  const MetricsSnapshot original = reg.snapshot();
  const MetricsSnapshot restored =
      MetricsSnapshot::from_json(original.to_json());
  EXPECT_EQ(prometheus_text(original), prometheus_text(restored));
}

}  // namespace
}  // namespace ft2
