// Chrome-trace exporter shape checks, registered as the TraceExportCheck
// ctest: the exported document must be a valid Chrome Trace Event /
// Perfetto JSON — parseable by the project's own Json::parse, every data
// event carrying name/ph/ts/dur/pid/tid, metadata events labelling each
// track before any data event, and timestamps monotonic within each
// (pid, tid) track.
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "core/ft2.hpp"
#include "serve/serve_engine.hpp"

namespace ft2 {
namespace {

TraceEvent make_event(std::string name, std::uint64_t start_us,
                      std::uint64_t dur_us,
                      std::vector<std::pair<std::string, std::string>> tags) {
  TraceEvent e;
  e.name = std::move(name);
  e.start_ns = start_us * 1000;
  e.end_ns = (start_us + dur_us) * 1000;
  e.tags = std::move(tags);
  return e;
}

TEST(TraceExportCheck, HandBuiltEventsExportWithTracksAndMetadata) {
  std::vector<TraceEvent> events;
  events.push_back(
      make_event("serve.prefill", 100, 50, {{"request", "3"}, {"slot", "0"}}));
  events.push_back(make_event("serve.decode_step", 160, 10,
                              {{"requests", "3,4"}, {"slots", "0,1"}}));
  events.push_back(make_event("untagged", 180, 5, {}));

  const Json doc = chrome_trace_json(events);
  const Json& list = doc.at("traceEvents");
  ASSERT_TRUE(list.is_array());

  std::size_t meta = 0;
  std::size_t data = 0;
  bool seen_data = false;
  std::set<long long> pids;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const Json& e = list.at(i);
    const std::string ph = e.at("ph").as_string();
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph == "M") {
      // All metadata precedes all data events.
      EXPECT_FALSE(seen_data);
      ++meta;
      continue;
    }
    ASSERT_EQ(ph, "X");
    seen_data = true;
    ++data;
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    pids.insert(static_cast<long long>(e.at("pid").as_double()));
  }
  // prefill + the batched step fanned out to two tracks + untagged.
  EXPECT_EQ(data, 4u);
  EXPECT_GT(meta, 0u);
  // Requests 3 and 4 plus the untagged fallback pid 0.
  EXPECT_EQ(pids, (std::set<long long>{0, 3, 4}));

  // Normalized timestamps start at 0 and durations stay in microseconds.
  double min_ts = 1e18;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const Json& e = list.at(i);
    if (e.at("ph").as_string() != "X") continue;
    min_ts = std::min(min_ts, e.at("ts").as_double());
    if (e.at("name").as_string() == "serve.prefill") {
      EXPECT_DOUBLE_EQ(e.at("dur").as_double(), 50.0);
    }
  }
  EXPECT_DOUBLE_EQ(min_ts, 0.0);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
}

TEST(TraceExportCheck, DroppedSpansSurfaceInExportMetadata) {
  Tracer tracer(2, /*enabled=*/true);
  tracer.instant("kept.a");
  tracer.instant("kept.b");
  // No wrap yet: a complete export carries no drop metadata.
  EXPECT_EQ(chrome_trace_json(tracer).find("otherData"), nullptr);

  tracer.instant("wraps.first");
  tracer.instant("wraps.second");
  tracer.instant("wraps.third");
  const Json doc = chrome_trace_json(tracer);
  const Json* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->at("dropped_spans").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(other->at("ring_capacity").as_double(), 2.0);
  // The serialized form survives a parse round-trip (viewers read it).
  std::ostringstream os;
  write_chrome_trace(os, tracer);
  const Json parsed = Json::parse(os.str());
  EXPECT_DOUBLE_EQ(parsed.at("otherData").at("dropped_spans").as_double(),
                   3.0);
}

TEST(TraceExportCheck, ServeRunExportsParseableMonotonicTrace) {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(7);
  const TransformerLM model(c, init_weights(c, rng));

  Tracer tracer(1024, /*enabled=*/true);
  ServeOptions serve_opts;
  serve_opts.obs.tracer = &tracer;
  ServeEngine engine(model, serve_opts);
  GenerateOptions opts;
  opts.max_new_tokens = 5;
  opts.eos_token = -1;
  const std::size_t n_requests = 3;
  std::vector<RequestId> ids;
  for (std::size_t r = 0; r < n_requests; ++r) {
    const std::vector<int> prompt = {Vocab::kBos, static_cast<int>(5 + r), 9};
    ids.push_back(engine.submit(prompt, opts));
  }
  engine.run();

  std::ostringstream os;
  write_chrome_trace(os, tracer);
  const Json doc = Json::parse(os.str());
  const Json& list = doc.at("traceEvents");
  ASSERT_TRUE(list.is_array());
  ASSERT_GT(list.size(), 0u);

  // Per-track monotonic timestamps, required keys on every data event, and
  // one prefill pid per request.
  std::map<std::pair<long long, long long>, double> last_ts;
  std::set<long long> prefill_pids;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const Json& e = list.at(i);
    if (e.at("ph").as_string() == "M") {
      EXPECT_NE(e.at("name").as_string().find("_name"), std::string::npos);
      continue;
    }
    ASSERT_EQ(e.at("ph").as_string(), "X");
    const double ts = e.at("ts").as_double();
    const double dur = e.at("dur").as_double();
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(dur, 0.0);
    const std::pair<long long, long long> track{
        static_cast<long long>(e.at("pid").as_double()),
        static_cast<long long>(e.at("tid").as_double())};
    const auto it = last_ts.find(track);
    if (it != last_ts.end()) EXPECT_GE(ts, it->second);
    last_ts[track] = ts;
    if (e.at("name").as_string() == "serve.prefill") {
      prefill_pids.insert(track.first);
      // Prefill spans carry request/slot/prompt_tokens args.
      ASSERT_NE(e.find("args"), nullptr);
      EXPECT_NE(e.at("args").find("request"), nullptr);
      EXPECT_NE(e.at("args").find("slot"), nullptr);
    }
  }
  EXPECT_EQ(prefill_pids.size(), n_requests);
}

}  // namespace
}  // namespace ft2
