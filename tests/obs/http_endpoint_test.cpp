// TelemetryEndpoint tests: in-process HTTP server over a live sampler,
// exercised with the built-in http_get client (no curl). Covers all three
// routes, 404 handling, ephemeral-port binding, and clean restart.
#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"
#include "obs/http_endpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/prom_export.hpp"
#include "obs/telemetry.hpp"

namespace ft2 {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(TelemetryEndpointSmoke, ServesAllRoutesOverEphemeralPort) {
  MetricsRegistry reg;
  reg.counter("smoke.requests").inc(12);
  reg.gauge("smoke.depth").set(3.0);
  TelemetrySampler sampler(&reg);
  sampler.sample_now();

  TelemetryEndpoint endpoint(&sampler);
  endpoint.start();
  ASSERT_TRUE(endpoint.running());
  ASSERT_GT(endpoint.port(), 0);
  EXPECT_EQ(endpoint.url(),
            "http://127.0.0.1:" + std::to_string(endpoint.port()));

  const HttpResponse health = http_get("127.0.0.1", endpoint.port(),
                                       "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const HttpResponse metrics = http_get("127.0.0.1", endpoint.port(),
                                        "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_TRUE(contains(metrics.body, "ft2_smoke_requests_total 12\n"));
  EXPECT_TRUE(contains(metrics.body, "ft2_smoke_depth 3\n"));
  // The served exposition matches rendering the snapshot directly.
  EXPECT_EQ(metrics.body, prometheus_text(sampler.telemetry_snapshot()));

  const HttpResponse snapshot = http_get("127.0.0.1", endpoint.port(),
                                         "/snapshot.json");
  EXPECT_EQ(snapshot.status, 200);
  const Json doc = Json::parse(snapshot.body);
  const MetricsSnapshot restored =
      MetricsSnapshot::from_json(doc.at("cumulative"));
  EXPECT_EQ(restored.counter_value("smoke.requests"), 12u);

  endpoint.stop();
  EXPECT_FALSE(endpoint.running());
}

TEST(TelemetryEndpointSmoke, UnknownRouteIs404) {
  MetricsRegistry reg;
  TelemetrySampler sampler(&reg);
  TelemetryEndpoint endpoint(&sampler);
  endpoint.start();
  const HttpResponse missing = http_get("127.0.0.1", endpoint.port(),
                                        "/nope");
  EXPECT_EQ(missing.status, 404);
  endpoint.stop();
}

TEST(TelemetryEndpointSmoke, QueryStringIsIgnoredForRouting) {
  MetricsRegistry reg;
  TelemetrySampler sampler(&reg);
  TelemetryEndpoint endpoint(&sampler);
  endpoint.start();
  const HttpResponse health = http_get("127.0.0.1", endpoint.port(),
                                       "/healthz?probe=1");
  EXPECT_EQ(health.status, 200);
  endpoint.stop();
}

TEST(TelemetryEndpointSmoke, StopThenRestartRebinds) {
  MetricsRegistry reg;
  TelemetrySampler sampler(&reg);
  TelemetryEndpoint endpoint(&sampler);
  endpoint.start();
  const int first_port = endpoint.port();
  endpoint.stop();
  // A request after stop must fail cleanly (status 0, diagnostic body).
  const HttpResponse dead = http_get("127.0.0.1", first_port, "/healthz",
                                     500);
  EXPECT_EQ(dead.status, 0);

  endpoint.start();
  const HttpResponse alive = http_get("127.0.0.1", endpoint.port(),
                                      "/healthz");
  EXPECT_EQ(alive.status, 200);
  endpoint.stop();
}

TEST(TelemetryEndpointSmoke, HttpGetReportsConnectFailure) {
  // Nothing listens on this port (just freed by the tests above in the
  // common case; worst case some other service answers and we only assert
  // the call returns rather than hangs).
  const HttpResponse r = http_get("127.0.0.1", 1, "/healthz", 500);
  EXPECT_EQ(r.status, 0);
  EXPECT_FALSE(r.body.empty());
}

}  // namespace
}  // namespace ft2
