// Tracer unit tests: disabled-tracer inertness, span recording, tags,
// ring-buffer wrap-around, the FT2_TRACE_CAPACITY knob, JSON export.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace ft2 {
namespace {

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tracer(8, /*enabled=*/false);
  {
    TraceSpan span = tracer.span("never");
    EXPECT_FALSE(span.active());
    span.tag("k", "v");  // no-op, must not crash
  }
  tracer.instant("also-never");
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(Tracer, SpanRecordsNameTagsAndDuration) {
  Tracer tracer(8, /*enabled=*/true);
  {
    TraceSpan span = tracer.span("work");
    EXPECT_TRUE(span.active());
    span.tag("request", "7").tag("rows", "3");
  }
  ASSERT_EQ(tracer.size(), 1u);
  const TraceEvent event = tracer.events()[0];
  EXPECT_EQ(event.name, "work");
  EXPECT_GE(event.end_ns, event.start_ns);
  EXPECT_GE(event.duration_ms(), 0.0);
  ASSERT_EQ(event.tags.size(), 2u);
  EXPECT_EQ(event.tags[0].first, "request");
  EXPECT_EQ(event.tags[0].second, "7");
}

TEST(Tracer, EndIsIdempotentAndEagerEndRecordsOnce) {
  Tracer tracer(8, /*enabled=*/true);
  TraceSpan span = tracer.span("once");
  span.end();
  span.end();  // second end must not re-record
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_FALSE(span.active());
}

TEST(Tracer, MoveTransfersOwnership) {
  Tracer tracer(8, /*enabled=*/true);
  {
    TraceSpan a = tracer.span("moved");
    TraceSpan b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): asserting it
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(tracer.size(), 1u);  // recorded exactly once, by the new owner
}

TEST(Tracer, RingWrapDropsOldestKeepsSequence) {
  Tracer tracer(4, /*enabled=*/true);
  for (int i = 0; i < 10; ++i) {
    tracer.instant("event" + std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and only the newest four survive.
  EXPECT_EQ(events.front().name, "event6");
  EXPECT_EQ(events.back().name, "event9");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(Tracer, ClearEmptiesBufferKeepsTotal) {
  Tracer tracer(4, /*enabled=*/true);
  tracer.instant("a");
  tracer.instant("b");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 2u);
}

TEST(Tracer, DroppedCountsRingWrapLoss) {
  Tracer tracer(4, /*enabled=*/true);
  for (int i = 0; i < 4; ++i) tracer.instant("fits");
  EXPECT_EQ(tracer.dropped(), 0u);
  for (int i = 0; i < 6; ++i) tracer.instant("evicts");
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.recorded(), 10u);
  tracer.clear();
  EXPECT_EQ(tracer.dropped(), 0u);  // clear() resets the loss tally
}

TEST(Tracer, BindMetricsMirrorsDropsIntoCounter) {
  MetricsRegistry registry;
  Tracer tracer(2, /*enabled=*/true);
  tracer.instant("one");
  tracer.instant("two");
  tracer.bind_metrics(&registry);
  // Drops before binding are not back-filled; only future wraps count.
  tracer.instant("three");
  tracer.instant("four");
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(registry.snapshot().counter_value("trace.dropped"), 2u);
  // Detach: further drops stop flowing into the registry.
  tracer.bind_metrics(nullptr);
  tracer.instant("five");
  EXPECT_EQ(tracer.dropped(), 3u);
  EXPECT_EQ(registry.snapshot().counter_value("trace.dropped"), 2u);
}

TEST(Tracer, JsonExportContainsSpans) {
  Tracer tracer(4, /*enabled=*/true);
  tracer.instant("snap", {{"key", "value"}});
  const std::string text = tracer.to_json().dump();
  EXPECT_NE(text.find("\"snap\""), std::string::npos);
  EXPECT_NE(text.find("\"key\""), std::string::npos);
}

TEST(Tracer, CapacityKnobControlsRingSizeAndWraps) {
  ::setenv("FT2_TRACE_CAPACITY", "3", /*overwrite=*/1);
  EXPECT_EQ(default_trace_capacity(), 3u);
  Tracer tracer(default_trace_capacity(), /*enabled=*/true);
  for (int i = 0; i < 7; ++i) {
    tracer.instant("e" + std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.recorded(), 7u);
  const auto events = tracer.events();
  EXPECT_EQ(events.front().name, "e4");
  EXPECT_EQ(events.back().name, "e6");

  ::setenv("FT2_TRACE_CAPACITY", "0", /*overwrite=*/1);
  EXPECT_EQ(default_trace_capacity(), 4096u);  // zero falls back to default
  ::unsetenv("FT2_TRACE_CAPACITY");
  EXPECT_EQ(default_trace_capacity(), 4096u);
}

TEST(Tracer, ThreadIndexDistinguishesThreads) {
  Tracer tracer(8, /*enabled=*/true);
  tracer.instant("main");
  std::thread worker([&] { tracer.instant("worker"); });
  worker.join();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread_index, events[1].thread_index);
  // Stable per thread: a second event from this thread repeats the index.
  tracer.instant("main-again");
  EXPECT_EQ(tracer.events()[2].thread_index, events[0].thread_index);
}

TEST(Tracer, SetEnabledTogglesRecording) {
  Tracer tracer(4, /*enabled=*/false);
  tracer.instant("off");
  tracer.set_enabled(true);
  tracer.instant("on");
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events()[0].name, "on");
}

}  // namespace
}  // namespace ft2
