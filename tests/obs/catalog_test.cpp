// Metric catalog completeness: every name a live workload registers (serve
// engine, protection hooks, drift monitor, campaign runner) must appear in
// metric_catalog(), and every trace span name recorded must be cataloged
// too — the catalog is what `ft2 metric-names` dumps and what
// tools/docs_check.sh verifies the docs against, so a gap here means a
// metric could exist undocumented.
#include "obs/catalog.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/ft2.hpp"
#include "fi/campaign.hpp"
#include "serve/serve_engine.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 96;
  Xoshiro256 rng(21);
  return TransformerLM(c, init_weights(c, rng));
}

TEST(MetricCatalog, ExpandsPlaceholdersAndSorts) {
  const auto& catalog = metric_catalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    // <KIND>/<OUTCOME> expand to concrete names; the numeric wildcard <N>
    // stays literal (it matches any index via find_catalog_entry).
    const std::string& name = catalog[i].name;
    if (name.find('<') != std::string::npos) {
      EXPECT_EQ(name.substr(name.size() - 4), std::string(".<N>"))
          << "unexpanded placeholder: " << name;
    }
    if (i > 0) EXPECT_LT(catalog[i - 1].name, catalog[i].name);
  }
  EXPECT_TRUE(is_cataloged_metric("serve.decode.steps"));
  EXPECT_TRUE(is_cataloged_metric("protect.headroom.Q_PROJ"));
  EXPECT_TRUE(is_cataloged_metric("protect.headroom.near_clip_frac"));
  EXPECT_TRUE(is_cataloged_metric("campaign.outcome.sdc"));
  EXPECT_TRUE(is_cataloged_metric("campaign.site.MLP_ACT"));
  EXPECT_TRUE(is_cataloged_metric("serve.prefill"));    // span name
  EXPECT_TRUE(is_cataloged_metric("campaign.trial"));   // span name
  EXPECT_TRUE(is_cataloged_metric("trace.dropped"));
  EXPECT_TRUE(is_cataloged_metric("campaign.progress.done"));
  EXPECT_TRUE(is_cataloged_metric("campaign.progress.eta_s"));
  // Numeric wildcard: any shard index matches campaign.shard.progress.<N>.
  EXPECT_TRUE(is_cataloged_metric("campaign.shard.progress.0"));
  EXPECT_TRUE(is_cataloged_metric("campaign.shard.progress.137"));
  EXPECT_FALSE(is_cataloged_metric("campaign.shard.progress.x"));
  EXPECT_FALSE(is_cataloged_metric("campaign.shard.progress."));
  EXPECT_FALSE(is_cataloged_metric("serve.decode.step"));
  EXPECT_FALSE(is_cataloged_metric("protect.headroom.<KIND>"));
  EXPECT_FALSE(is_cataloged_metric(""));

  const auto names = all_metric_names();
  EXPECT_EQ(names.size(), catalog.size());
}

TEST(MetricCatalog, TemplateNamesAreUnexpandedAndSorted) {
  const auto templates = metric_template_names();
  ASSERT_FALSE(templates.empty());
  for (std::size_t i = 1; i < templates.size(); ++i) {
    EXPECT_LT(templates[i - 1], templates[i]);
  }
  // Templates keep placeholders (the docs gate keys rows off them) and
  // never contain an expansion.
  bool saw_kind = false;
  for (const std::string& name : templates) {
    if (name.find("<KIND>") != std::string::npos) saw_kind = true;
    EXPECT_EQ(name.find("V_PROJ"), std::string::npos) << name;
  }
  EXPECT_TRUE(saw_kind);
}

TEST(MetricCatalog, FindCatalogEntryResolvesWildcards) {
  const CatalogEntry* exact = find_catalog_entry("campaign.trials");
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->name, "campaign.trials");
  const CatalogEntry* wildcard =
      find_catalog_entry("campaign.shard.progress.42");
  ASSERT_NE(wildcard, nullptr);
  EXPECT_EQ(wildcard->name, "campaign.shard.progress.<N>");
  EXPECT_EQ(find_catalog_entry("definitely.not.a.metric"), nullptr);
}

TEST(MetricCatalog, LiveWorkloadRegistersOnlyCatalogedNames) {
  const TransformerLM model = micro_model();
  MetricsRegistry registry;
  Tracer tracer(512, /*enabled=*/true);

  // Serve path with protection hooks.
  {
    ServeOptions serve_opts;
    serve_opts.obs.metrics = &registry;
    serve_opts.obs.tracer = &tracer;
    ServeEngine engine(model, serve_opts);
    const SchemeSpec spec = scheme_spec(SchemeKind::kFt2, model.config());
    ProtectionHook hook(model.config(), spec, BoundStore{}, &registry);
    GenerateOptions opts;
    opts.max_new_tokens = 4;
    opts.eos_token = -1;
    const std::vector<int> prompt = {Vocab::kBos, 5, 9};
    const RequestId id = engine.submit(prompt, opts);
    const auto reg = engine.hooks(id).add(hook);
    engine.run();
  }

  // Campaign path with drift monitor + prefix reuse + clip capture.
  {
    const auto samples =
        make_generator(DatasetKind::kSynthQA)->generate_many(1, 99);
    const auto inputs = prepare_eval_inputs(model, samples, 4, false);
    CampaignConfig config;
    config.trials_per_input = 4;
    config.gen_tokens = 4;
    config.obs.metrics = &registry;
    config.obs.tracer = &tracer;
    config.drift_monitor = true;
    config.capture_clips = true;
    run_campaign(model, inputs, SchemeKind::kFt2, BoundStore{}, config);
  }

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_FALSE(snap.counters.empty());
  EXPECT_FALSE(snap.histograms.empty());
  for (const auto& c : snap.counters) {
    EXPECT_TRUE(is_cataloged_metric(c.name)) << "uncataloged: " << c.name;
  }
  for (const auto& g : snap.gauges) {
    EXPECT_TRUE(is_cataloged_metric(g.name)) << "uncataloged: " << g.name;
  }
  for (const auto& h : snap.histograms) {
    EXPECT_TRUE(is_cataloged_metric(h.name)) << "uncataloged: " << h.name;
  }

  std::set<std::string> span_names;
  for (const TraceEvent& event : tracer.events()) {
    span_names.insert(event.name);
  }
  EXPECT_FALSE(span_names.empty());
  for (const std::string& name : span_names) {
    EXPECT_TRUE(is_cataloged_metric(name)) << "uncataloged span: " << name;
  }
}

}  // namespace
}  // namespace ft2
