// MetricsRegistry unit tests: striped-counter concurrency, histogram
// bucket-boundary semantics, idempotent registration, snapshot export.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "obs/metrics.hpp"

namespace ft2 {
namespace {

TEST(MetricsRegistry, CounterAccumulatesAndSnapshots) {
  MetricsRegistry reg;
  Counter c = reg.counter("test.counter");
  EXPECT_TRUE(c.enabled());
  c.inc();
  c.inc(41);
  EXPECT_EQ(reg.snapshot().counter_value("test.counter"), 42u);
  EXPECT_EQ(reg.snapshot().counter_value("test.absent"), 0u);
}

TEST(MetricsRegistry, InertHandlesAreNoOps) {
  Counter c;
  Gauge g;
  HistogramMetric h;
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(g.enabled());
  EXPECT_FALSE(h.enabled());
  c.inc();        // must not crash
  g.set(1.0);
  h.observe(1.0);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter a = reg.counter("dup.counter");
  Counter b = reg.counter("dup.counter");
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(reg.snapshot().counter_value("dup.counter"), 5u);
  EXPECT_EQ(reg.snapshot().counters.size(), 1u);

  const std::vector<double> uppers = {1.0, 2.0};
  HistogramMetric h1 = reg.histogram("dup.hist", uppers);
  HistogramMetric h2 = reg.histogram("dup.hist", uppers);
  h1.observe(0.5);
  h2.observe(1.5);
  EXPECT_EQ(reg.snapshot().find_histogram("dup.hist")->count, 2u);
}

TEST(MetricsRegistry, HistogramRebucketThrows) {
  MetricsRegistry reg;
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0, 4.0};
  (void)reg.histogram("conflict.hist", a);
  EXPECT_THROW((void)reg.histogram("conflict.hist", b), Error);
}

TEST(MetricsRegistry, ConcurrentIncrementsSumExactly) {
  // The acceptance shape: N threads x M increments over shared handles;
  // the snapshot must equal the exact total (striped relaxed atomics lose
  // nothing, they only spread contention).
  MetricsRegistry reg;
  const std::size_t n_threads = 8;
  const std::size_t per_thread = 20000;
  Counter c = reg.counter("mt.counter");
  HistogramMetric h = reg.histogram("mt.hist", std::vector<double>{0.5, 1.5});

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        c.inc();
        h.observe(t % 2 == 0 ? 0.25 : 1.0);  // alternate buckets per thread
      }
    });
  }
  for (auto& th : threads) th.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("mt.counter"), n_threads * per_thread);
  const auto* hist = snap.find_histogram("mt.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, n_threads * per_thread);
  EXPECT_EQ(hist->counts[0], n_threads / 2 * per_thread);
  EXPECT_EQ(hist->counts[1], n_threads / 2 * per_thread);
  EXPECT_EQ(hist->counts[2], 0u);
  EXPECT_DOUBLE_EQ(hist->sum, n_threads / 2 * per_thread * (0.25 + 1.0));
}

TEST(MetricsRegistry, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  HistogramMetric h =
      reg.histogram("edge.hist", std::vector<double>{1.0, 10.0, 100.0});
  h.observe(-5.0);    // below everything -> first bucket
  h.observe(0.0);     // first bucket
  h.observe(1.0);     // exactly on a bound -> that bucket ("le" semantics)
  h.observe(1.0001);  // just above -> next bucket
  h.observe(10.0);    // on bound -> second bucket
  h.observe(100.0);   // on last finite bound -> third bucket
  h.observe(100.5);   // above last bound -> overflow bucket
  h.observe(std::numeric_limits<double>::infinity());  // overflow bucket
  h.observe(std::numeric_limits<double>::quiet_NaN()); // nan_count only

  const MetricsSnapshot snap = reg.snapshot();
  const auto* hist = snap.find_histogram("edge.hist");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->uppers.size(), 3u);
  ASSERT_EQ(hist->counts.size(), 4u);
  EXPECT_EQ(hist->counts[0], 3u);  // -5, 0, 1
  EXPECT_EQ(hist->counts[1], 2u);  // 1.0001, 10
  EXPECT_EQ(hist->counts[2], 1u);  // 100
  EXPECT_EQ(hist->counts[3], 2u);  // 100.5, +inf
  EXPECT_EQ(hist->count, 8u);
  EXPECT_EQ(hist->nan_count, 1u);
  EXPECT_TRUE(std::isinf(hist->sum));  // +inf sample dominates the sum
}

TEST(MetricsRegistry, HistogramMeanAndQuantiles) {
  MetricsRegistry reg;
  HistogramMetric h =
      reg.histogram("q.hist", std::vector<double>{1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) h.observe(0.5);  // all in [0, 1]
  const MetricsSnapshot snap = reg.snapshot();
  const auto* hist = snap.find_histogram("q.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->mean(), 0.5);
  // Every sample sits in the first bucket: quantiles interpolate within
  // [0, 1] and can never leave it.
  EXPECT_GE(hist->quantile(0.5), 0.0);
  EXPECT_LE(hist->quantile(0.5), 1.0);
  EXPECT_LE(hist->quantile(0.99), 1.0);

  const MetricsSnapshot empty_snap = MetricsRegistry().snapshot();
  EXPECT_TRUE(empty_snap.counters.empty());
}

TEST(MetricsRegistry, QuantileEdgeCases) {
  MetricsRegistry reg;
  HistogramMetric h =
      reg.histogram("qe.hist", std::vector<double>{1.0, 2.0, 4.0});

  // Empty histogram: every quantile is 0 (no samples to interpolate over).
  {
    const MetricsSnapshot snap = reg.snapshot();
    const auto* hist = snap.find_histogram("qe.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(hist->quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(hist->quantile(1.0), 0.0);
  }

  // Single sample: every quantile lands inside that sample's bucket.
  h.observe(1.5);  // bucket (1, 2]
  {
    const MetricsSnapshot snap = reg.snapshot();
    const auto* hist = snap.find_histogram("qe.hist");
    ASSERT_NE(hist, nullptr);
    for (double q : {0.01, 0.5, 0.95, 0.99, 1.0}) {
      EXPECT_GE(hist->quantile(q), 1.0) << "q=" << q;
      EXPECT_LE(hist->quantile(q), 2.0) << "q=" << q;
    }
  }

  // All samples in the overflow bucket: quantiles report the overflow
  // bucket's lower bound (the last finite upper edge) at every q, and an
  // out-of-range q clamps rather than throwing.
  MetricsRegistry reg2;
  HistogramMetric over =
      reg2.histogram("qe.over", std::vector<double>{1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) over.observe(100.0);
  {
    const MetricsSnapshot snap = reg2.snapshot();
    const auto* hist = snap.find_histogram("qe.over");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->quantile(0.5), 4.0);
    EXPECT_DOUBLE_EQ(hist->quantile(0.95), 4.0);
    EXPECT_DOUBLE_EQ(hist->quantile(0.99), 4.0);
    EXPECT_DOUBLE_EQ(hist->quantile(1.5), 4.0);
  }
}

TEST(MetricsRegistry, ExportsIncludeP95) {
  MetricsRegistry reg;
  HistogramMetric h = reg.histogram("p.hist", std::vector<double>{1.0, 2.0});
  for (int i = 0; i < 20; ++i) h.observe(0.5);
  const Json doc = reg.snapshot().to_json();
  const Json& entry = doc.at("histograms").at("p.hist");
  ASSERT_NE(entry.find("p50"), nullptr);
  ASSERT_NE(entry.find("p95"), nullptr);
  ASSERT_NE(entry.find("p99"), nullptr);

  std::ostringstream os;
  reg.snapshot().to_table().print(os);
  EXPECT_NE(os.str().find("p95"), std::string::npos);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("test.gauge");
  g.set(3.0);
  g.set(7.5);
  const MetricsSnapshot snap = reg.snapshot();
  const auto* gv = snap.find_gauge("test.gauge");
  ASSERT_NE(gv, nullptr);
  EXPECT_DOUBLE_EQ(gv->value, 7.5);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter c = reg.counter("r.counter");
  HistogramMetric h = reg.histogram("r.hist", std::vector<double>{1.0});
  c.inc(9);
  h.observe(0.5);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("r.counter"), 0u);
  EXPECT_EQ(snap.find_histogram("r.hist")->count, 0u);
  // Handles registered before reset keep working.
  c.inc();
  EXPECT_EQ(reg.snapshot().counter_value("r.counter"), 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  (void)reg.counter("z.last");
  (void)reg.counter("a.first");
  (void)reg.counter("m.middle");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "m.middle");
  EXPECT_EQ(snap.counters[2].name, "z.last");
}

TEST(MetricsRegistry, JsonExportRoundTrips) {
  MetricsRegistry reg;
  reg.counter("j.counter").inc(5);
  reg.gauge("j.gauge").set(2.5);
  reg.histogram("j.hist", std::vector<double>{1.0, 2.0}).observe(1.5);
  const std::string text = reg.snapshot().to_json().dump();
  EXPECT_NE(text.find("\"j.counter\""), std::string::npos);
  EXPECT_NE(text.find("\"j.gauge\""), std::string::npos);
  EXPECT_NE(text.find("\"j.hist\""), std::string::npos);
  EXPECT_NE(text.find("\"bucket_counts\""), std::string::npos);
}

TEST(MetricsRegistry, TableExportListsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("t.counter").inc();
  reg.gauge("t.gauge").set(1.0);
  reg.histogram("t.hist", std::vector<double>{1.0}).observe(0.5);
  std::ostringstream os;
  reg.snapshot().to_table().print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("t.counter"), std::string::npos);
  EXPECT_NE(text.find("t.gauge"), std::string::npos);
  EXPECT_NE(text.find("t.hist"), std::string::npos);
}

TEST(MetricsRegistry, ExponentialBucketsShape) {
  const auto buckets = exponential_buckets(0.5, 2.0, 4);
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_DOUBLE_EQ(buckets[0], 0.5);
  EXPECT_DOUBLE_EQ(buckets[3], 4.0);
  EXPECT_FALSE(latency_ms_buckets().empty());
  EXPECT_FALSE(magnitude_buckets().empty());
}

}  // namespace
}  // namespace ft2
