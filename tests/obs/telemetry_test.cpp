// TelemetrySampler unit tests: ring bounds, interval derivation (counter
// rates, histogram deltas, gauge pass-through), snapshot JSON round-trip,
// multi-snapshot merge, and the bit-identical-with-sampler guarantee.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace ft2 {
namespace {

TelemetrySample sample_at(std::uint64_t steady_ns,
                          const MetricsRegistry& reg) {
  TelemetrySample s;
  s.steady_ns = steady_ns;
  s.snapshot = reg.snapshot();
  return s;
}

TEST(Telemetry, DeriveIntervalCounterRates) {
  MetricsRegistry reg;
  Counter c = reg.counter("test.events");
  c.inc(10);
  const TelemetrySample older = sample_at(0, reg);
  c.inc(30);
  const TelemetrySample newer = sample_at(2'000'000'000ull, reg);

  const TelemetryInterval interval = derive_interval(older, newer);
  EXPECT_DOUBLE_EQ(interval.seconds, 2.0);
  const TelemetryInterval::CounterRate* rate =
      interval.find_counter("test.events");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->delta, 30u);
  EXPECT_DOUBLE_EQ(rate->per_sec, 15.0);
  EXPECT_DOUBLE_EQ(interval.counter_rate("test.events"), 15.0);
  EXPECT_DOUBLE_EQ(interval.counter_rate("test.absent"), 0.0);
}

TEST(Telemetry, DeriveIntervalFreshMetricCountsFromZero) {
  MetricsRegistry reg;
  const TelemetrySample older = sample_at(0, reg);
  reg.counter("born.later").inc(7);
  const TelemetrySample newer = sample_at(1'000'000'000ull, reg);

  const TelemetryInterval interval = derive_interval(older, newer);
  const TelemetryInterval::CounterRate* rate =
      interval.find_counter("born.later");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->delta, 7u);
  EXPECT_DOUBLE_EQ(rate->per_sec, 7.0);
}

TEST(Telemetry, DeriveIntervalClampsRegistryReset) {
  // A registry reset between samples makes the newer value smaller; the
  // interval must clamp the delta at 0, never go negative/underflow.
  MetricsRegistry reg;
  Counter c = reg.counter("reset.me");
  c.inc(100);
  const TelemetrySample older = sample_at(0, reg);
  reg.reset();
  c.inc(5);
  const TelemetrySample newer = sample_at(1'000'000'000ull, reg);

  const TelemetryInterval interval = derive_interval(older, newer);
  const TelemetryInterval::CounterRate* rate =
      interval.find_counter("reset.me");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->delta, 0u);
  EXPECT_DOUBLE_EQ(rate->per_sec, 0.0);
}

TEST(Telemetry, DeriveIntervalHistogramDeltaPercentiles) {
  MetricsRegistry reg;
  const std::vector<double> uppers = {1.0, 10.0, 100.0};
  HistogramMetric h = reg.histogram("test.lat_ms", uppers);
  // Before: 100 fast samples.
  for (int i = 0; i < 100; ++i) h.observe(0.5);
  const TelemetrySample older = sample_at(0, reg);
  // During the interval: 10 slow samples only.
  for (int i = 0; i < 10; ++i) h.observe(50.0);
  const TelemetrySample newer = sample_at(1'000'000'000ull, reg);

  const TelemetryInterval interval = derive_interval(older, newer);
  const MetricsSnapshot::HistogramValue* hist =
      interval.find_histogram("test.lat_ms");
  ASSERT_NE(hist, nullptr);
  // The interval view sees ONLY the 10 slow samples: cumulative p50 would
  // still sit in the fast bucket, interval p50 must be in (10, 100].
  EXPECT_EQ(hist->count, 10u);
  EXPECT_GT(hist->quantile(0.5), 10.0);
  EXPECT_LE(hist->quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(hist->sum, 500.0);
}

TEST(Telemetry, DeriveIntervalGaugesPassThrough) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("test.occupancy");
  g.set(3.0);
  const TelemetrySample older = sample_at(0, reg);
  g.set(8.0);
  const TelemetrySample newer = sample_at(1'000'000'000ull, reg);

  const TelemetryInterval interval = derive_interval(older, newer);
  ASSERT_EQ(interval.gauges.size(), 1u);
  EXPECT_EQ(interval.gauges[0].name, "test.occupancy");
  EXPECT_DOUBLE_EQ(interval.gauges[0].value, 8.0);
}

TEST(Telemetry, IntervalToJsonShape) {
  MetricsRegistry reg;
  reg.counter("a.b").inc(4);
  const TelemetrySample older = sample_at(0, reg);
  reg.counter("a.b").inc(4);
  const TelemetrySample newer = sample_at(500'000'000ull, reg);

  const Json doc = derive_interval(older, newer).to_json();
  EXPECT_DOUBLE_EQ(doc.at("seconds").as_double(), 0.5);
  const Json& rate = doc.at("counters").at("a.b");
  EXPECT_DOUBLE_EQ(rate.at("delta").as_double(), 4.0);
  EXPECT_DOUBLE_EQ(rate.at("per_sec").as_double(), 8.0);
}

TEST(Telemetry, SnapshotJsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("rt.counter").inc(42);
  reg.gauge("rt.gauge").set(2.5);
  reg.gauge("rt.nan_gauge").set(std::numeric_limits<double>::quiet_NaN());
  const std::vector<double> uppers = {1.0, 2.0};
  HistogramMetric h = reg.histogram("rt.hist", uppers);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);  // overflow bucket
  h.observe(std::numeric_limits<double>::quiet_NaN());

  const MetricsSnapshot original = reg.snapshot();
  const MetricsSnapshot restored =
      MetricsSnapshot::from_json(original.to_json());

  EXPECT_EQ(restored.counter_value("rt.counter"), 42u);
  const MetricsSnapshot::GaugeValue* gauge = restored.find_gauge("rt.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 2.5);
  // JSON has no NaN (the writer emits null); from_json maps null back.
  const MetricsSnapshot::GaugeValue* nan_gauge =
      restored.find_gauge("rt.nan_gauge");
  ASSERT_NE(nan_gauge, nullptr);
  EXPECT_TRUE(std::isnan(nan_gauge->value));

  const MetricsSnapshot::HistogramValue* hist =
      restored.find_histogram("rt.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->uppers, uppers);
  ASSERT_EQ(hist->counts.size(), 3u);
  EXPECT_EQ(hist->counts[0], 1u);
  EXPECT_EQ(hist->counts[1], 1u);
  EXPECT_EQ(hist->counts[2], 1u);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_EQ(hist->nan_count, 1u);
  EXPECT_DOUBLE_EQ(hist->sum, 101.0);
}

TEST(Telemetry, MergeSnapshotsSumsAcrossParts) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("shared.counter").inc(10);
  b.counter("shared.counter").inc(5);
  b.counter("only.b").inc(3);
  a.gauge("shared.gauge").set(1.0);
  b.gauge("shared.gauge").set(2.0);
  const std::vector<double> uppers = {1.0, 2.0};
  a.histogram("shared.hist", uppers).observe(0.5);
  b.histogram("shared.hist", uppers).observe(1.5);

  const MetricsSnapshot merged =
      merge_snapshots({a.snapshot(), b.snapshot()});
  EXPECT_EQ(merged.counter_value("shared.counter"), 15u);
  EXPECT_EQ(merged.counter_value("only.b"), 3u);
  EXPECT_DOUBLE_EQ(merged.find_gauge("shared.gauge")->value, 3.0);
  const MetricsSnapshot::HistogramValue* hist =
      merged.find_histogram("shared.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u);
  EXPECT_EQ(hist->counts[0], 1u);
  EXPECT_EQ(hist->counts[1], 1u);
  EXPECT_DOUBLE_EQ(hist->sum, 2.0);
}

TEST(Telemetry, MergeSnapshotsKeepsSortedNames) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("zz.last").inc(1);
  b.counter("aa.first").inc(1);
  const MetricsSnapshot merged =
      merge_snapshots({a.snapshot(), b.snapshot()});
  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters[0].name, "aa.first");
  EXPECT_EQ(merged.counters[1].name, "zz.last");
}

TEST(TelemetrySampler, RingIsBounded) {
  MetricsRegistry reg;
  TelemetrySampler::Options options;
  options.ring_capacity = 4;
  TelemetrySampler sampler(&reg, options);
  for (int i = 0; i < 10; ++i) sampler.sample_now();
  EXPECT_EQ(sampler.sample_count(), 4u);
  // Oldest were evicted: seq keeps counting past the ring.
  const std::vector<TelemetrySample> history = sampler.history();
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(history.front().seq, 6u);
  EXPECT_EQ(history.back().seq, 9u);
  EXPECT_EQ(sampler.latest().seq, 9u);
}

TEST(TelemetrySampler, LatestIntervalSeesRecentActivity) {
  MetricsRegistry reg;
  Counter c = reg.counter("work.items");
  c.inc(100);
  TelemetrySampler sampler(&reg);
  sampler.sample_now();
  c.inc(25);
  sampler.sample_now();
  const TelemetryInterval interval = sampler.latest_interval();
  const TelemetryInterval::CounterRate* rate =
      interval.find_counter("work.items");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->delta, 25u);
}

TEST(TelemetrySampler, StartStopLeavesAtLeastTwoSamples) {
  // Even a workload shorter than one interval must leave enough samples
  // for an interval view: start() samples immediately, stop() samples on
  // the way out.
  MetricsRegistry reg;
  TelemetrySampler::Options options;
  options.interval_ms = 60'000;  // never fires during the test
  TelemetrySampler sampler(&reg, options);
  sampler.start();
  EXPECT_TRUE(sampler.running());
  reg.counter("quick.burst").inc(9);
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.sample_count(), 2u);
  EXPECT_EQ(sampler.latest_interval().find_counter("quick.burst")->delta,
            9u);
}

TEST(TelemetrySampler, StartStopIdempotent) {
  MetricsRegistry reg;
  TelemetrySampler sampler(&reg);
  sampler.start();
  sampler.start();
  sampler.stop();
  sampler.stop();
  EXPECT_FALSE(sampler.running());
}

TEST(TelemetrySampler, SamplingDoesNotPerturbRegistry) {
  // The core guarantee: a sampler is a pure reader, so workload results
  // are bit-identical with it running or not.
  MetricsRegistry with;
  MetricsRegistry without;
  TelemetrySampler::Options options;
  options.interval_ms = 1;
  TelemetrySampler sampler(&with, options);
  sampler.start();
  for (int i = 0; i < 500; ++i) {
    with.counter("load.ops").inc(3);
    without.counter("load.ops").inc(3);
    with.gauge("load.depth").set(static_cast<double>(i));
    without.gauge("load.depth").set(static_cast<double>(i));
  }
  sampler.stop();
  const MetricsSnapshot a = with.snapshot();
  const MetricsSnapshot b = without.snapshot();
  EXPECT_EQ(a.counter_value("load.ops"), b.counter_value("load.ops"));
  EXPECT_DOUBLE_EQ(a.find_gauge("load.depth")->value,
                   b.find_gauge("load.depth")->value);
}

TEST(TelemetrySampler, TelemetryJsonShape) {
  MetricsRegistry reg;
  reg.counter("shape.counter").inc(1);
  TelemetrySampler sampler(&reg);
  sampler.sample_now();
  sampler.sample_now();
  const Json doc = sampler.telemetry_json();
  EXPECT_TRUE(doc.find("ts_ms") != nullptr);
  EXPECT_GE(doc.at("samples").as_double(), 2.0);
  EXPECT_TRUE(doc.find("interval") != nullptr);
  const Json& cumulative = doc.at("cumulative");
  // The cumulative view parses back into a snapshot (what `ft2 top` does).
  const MetricsSnapshot restored = MetricsSnapshot::from_json(cumulative);
  EXPECT_EQ(restored.counter_value("shape.counter"), 1u);
}

TEST(MetricsSnapshotJson, HistogramJsonPinsDerivedQuantiles) {
  // Pin the derived p50/p95/p99/mean keys in histogram JSON: downstream
  // dashboards read them, so renaming is a breaking change.
  MetricsRegistry reg;
  const std::vector<double> uppers = {10.0, 20.0, 40.0};
  HistogramMetric h = reg.histogram("pin.lat_ms", uppers);
  for (int i = 0; i < 90; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(15.0);

  const Json doc = reg.snapshot().to_json();
  const Json& hist = doc.at("histograms").at("pin.lat_ms");
  EXPECT_DOUBLE_EQ(hist.at("count").as_double(), 100.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").as_double(), 6.0);
  // 90% of samples in [0,10]: p50 interpolates inside the first bucket,
  // p95/p99 land in the second.
  EXPECT_GT(hist.at("p50").as_double(), 0.0);
  EXPECT_LE(hist.at("p50").as_double(), 10.0);
  EXPECT_GT(hist.at("p95").as_double(), 10.0);
  EXPECT_LE(hist.at("p95").as_double(), 20.0);
  EXPECT_GT(hist.at("p99").as_double(), 10.0);
  EXPECT_LE(hist.at("p99").as_double(), 20.0);
}

}  // namespace
}  // namespace ft2
