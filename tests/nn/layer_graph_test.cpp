#include "nn/layer_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ft2 {
namespace {

ModelConfig config_for(ArchFamily arch) {
  ModelConfig c;
  c.arch = arch;
  c.vocab_size = 16;
  if (arch == ArchFamily::kGptj) c.parallel_block = true;
  if (arch == ArchFamily::kLlama) {
    c.norm = NormKind::kRmsNorm;
    c.position = PositionKind::kRotary;
    c.activation = Activation::kSilu;
    c.linear_bias = false;
  }
  if (arch == ArchFamily::kGptj) c.position = PositionKind::kRotary;
  return c;
}

TEST(LayerGraph, OptHasExpectedLinears) {
  const LayerGraph g = LayerGraph::build(config_for(ArchFamily::kOpt));
  const auto kinds = g.linear_kinds();
  EXPECT_EQ(kinds.size(), 6u);
  for (LayerKind k : {LayerKind::kQProj, LayerKind::kKProj, LayerKind::kVProj,
                      LayerKind::kOutProj, LayerKind::kFc1, LayerKind::kFc2}) {
    EXPECT_NE(g.find_linear(k), -1) << layer_kind_name(k);
  }
  EXPECT_EQ(g.find_linear(LayerKind::kGateProj), -1);
}

TEST(LayerGraph, LlamaHasGatedMlp) {
  const LayerGraph g = LayerGraph::build(config_for(ArchFamily::kLlama));
  for (LayerKind k :
       {LayerKind::kGateProj, LayerKind::kUpProj, LayerKind::kDownProj}) {
    EXPECT_NE(g.find_linear(k), -1) << layer_kind_name(k);
  }
  EXPECT_EQ(g.find_linear(LayerKind::kFc1), -1);
}

TEST(LayerGraph, RotaryModelsHaveRopeNodes) {
  const LayerGraph llama = LayerGraph::build(config_for(ArchFamily::kLlama));
  const LayerGraph opt = LayerGraph::build(config_for(ArchFamily::kOpt));
  auto count_rope = [](const LayerGraph& g) {
    return std::count_if(g.nodes().begin(), g.nodes().end(),
                         [](const OpNode& n) { return n.op == OpKind::kRope; });
  };
  EXPECT_EQ(count_rope(llama), 2);
  EXPECT_EQ(count_rope(opt), 0);
}

TEST(LayerGraph, GptjHasSingleResidualAdd) {
  const LayerGraph g = LayerGraph::build(config_for(ArchFamily::kGptj));
  const auto adds = std::count_if(
      g.nodes().begin(), g.nodes().end(),
      [](const OpNode& n) { return n.op == OpKind::kResidualAdd; });
  EXPECT_EQ(adds, 1);

  const LayerGraph serial = LayerGraph::build(config_for(ArchFamily::kOpt));
  const auto serial_adds = std::count_if(
      serial.nodes().begin(), serial.nodes().end(),
      [](const OpNode& n) { return n.op == OpKind::kResidualAdd; });
  EXPECT_EQ(serial_adds, 2);
}

TEST(LayerGraph, QAndKFeedTheAttentionScale) {
  const LayerGraph g = LayerGraph::build(config_for(ArchFamily::kOpt));
  const int q = g.find_linear(LayerKind::kQProj);
  int scale = -1;
  for (int i = 0; i < g.size(); ++i) {
    if (g.node(i).op == OpKind::kAttentionScale) scale = i;
  }
  ASSERT_NE(scale, -1);
  const auto& succ = g.node(q).successors;
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), scale) != succ.end());
}

TEST(LayerGraph, VFeedsWeightingNotScale) {
  const LayerGraph g = LayerGraph::build(config_for(ArchFamily::kLlama));
  const int v = g.find_linear(LayerKind::kVProj);
  ASSERT_EQ(g.node(v).successors.size(), 1u);
  EXPECT_EQ(g.node(g.node(v).successors[0]).op, OpKind::kWeighting);
}

TEST(LayerGraph, GuardOpClassification) {
  EXPECT_TRUE(is_guard_op(OpKind::kActivation));
  EXPECT_TRUE(is_guard_op(OpKind::kAttentionScale));
  EXPECT_FALSE(is_guard_op(OpKind::kResidualAdd));
  EXPECT_FALSE(is_guard_op(OpKind::kNorm));
  EXPECT_FALSE(is_guard_op(OpKind::kElementwiseMul));
  EXPECT_FALSE(is_guard_op(OpKind::kWeighting));
  EXPECT_FALSE(is_guard_op(OpKind::kRope));
}

TEST(LayerGraph, EveryGraphEndsAtNextLinearSentinel) {
  for (ArchFamily arch :
       {ArchFamily::kOpt, ArchFamily::kGptj, ArchFamily::kLlama}) {
    const LayerGraph g = LayerGraph::build(config_for(arch));
    const auto sentinels = std::count_if(
        g.nodes().begin(), g.nodes().end(),
        [](const OpNode& n) { return n.op == OpKind::kNextLinear; });
    EXPECT_EQ(sentinels, 1) << static_cast<int>(arch);
  }
}

}  // namespace
}  // namespace ft2
