// Bit-exactness guarantees of the blocked prefill (forward_span) against
// the sequential reference path (forward_position):
//   - identical last-position logits and interchangeable KV caches for any
//     chunk split, any ExecConfig (fp16 x chunked_accum) and any pool size;
//   - hooks observe each site's rows with the same values, in the same
//     position order, as the sequential path;
//   - fault-injection campaign outcomes are invariant to the chunk size.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "core/ft2.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model(ArchFamily arch) {
  ModelConfig c;
  c.arch = arch;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 24;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 32;
  c.max_seq = 96;
  switch (arch) {
    case ArchFamily::kOpt:
      c.activation = Activation::kRelu;
      c.norm = NormKind::kLayerNorm;
      c.position = PositionKind::kLearned;
      c.linear_bias = true;
      break;
    case ArchFamily::kGptj:
      c.activation = Activation::kGelu;
      c.norm = NormKind::kLayerNorm;
      c.position = PositionKind::kRotary;
      c.parallel_block = true;
      c.linear_bias = true;
      break;
    case ArchFamily::kLlama:
      c.activation = Activation::kSilu;
      c.norm = NormKind::kRmsNorm;
      c.position = PositionKind::kRotary;
      c.linear_bias = false;
      break;
  }
  Xoshiro256 rng(41);
  return TransformerLM(c, init_weights(c, rng));
}

std::vector<int> micro_prompt(const TransformerLM& model, std::size_t n) {
  std::vector<int> prompt = {Vocab::kBos};
  const int vocab = static_cast<int>(model.config().vocab_size);
  for (std::size_t i = 1; i < n; ++i) {
    prompt.push_back(static_cast<int>(i * 7 + 3) % vocab);
  }
  return prompt;
}

/// Prefill logits + one decode step on top of the resulting cache. The
/// decode step reads every cached K/V, so bitwise-equal decode logits imply
/// the two prefill paths left interchangeable caches behind.
struct RunOutput {
  std::vector<float> prefill_logits;
  std::vector<float> decode_logits;
};

RunOutput run_sequential(const TransformerLM& model,
                         const std::vector<int>& prompt,
                         const ExecConfig& exec, const HookChain& hooks) {
  KvCache cache = model.make_cache();
  Workspace ws(model.config());
  RunOutput out;
  out.prefill_logits.resize(model.config().vocab_size);
  for (std::size_t p = 0; p < prompt.size(); ++p) {
    model.forward_position(prompt[p], p, cache, hooks, exec, true, ws,
                           out.prefill_logits);
  }
  out.decode_logits.resize(model.config().vocab_size);
  model.forward_position(7, prompt.size(), cache, hooks, exec, false, ws,
                         out.decode_logits);
  return out;
}

RunOutput run_blocked(const TransformerLM& model,
                      const std::vector<int>& prompt, std::size_t chunk,
                      const ExecConfig& exec, const HookChain& hooks) {
  KvCache cache = model.make_cache();
  Workspace ws(model.config());
  RunOutput out;
  out.prefill_logits.resize(model.config().vocab_size);
  const std::span<const int> tokens(prompt);
  const std::size_t n = prompt.size();
  const std::size_t step = chunk == 0 ? n : chunk;
  for (std::size_t p = 0; p < n; p += step) {
    const std::size_t take = std::min(step, n - p);
    const bool last = p + take == n;
    model.forward_span(tokens.subspan(p, take), p, cache, hooks, exec, true,
                       ws,
                       last ? std::span<float>(out.prefill_logits)
                            : std::span<float>{});
  }
  out.decode_logits.resize(model.config().vocab_size);
  model.forward_position(7, n, cache, hooks, exec, false, ws,
                         out.decode_logits);
  return out;
}

TEST(ForwardSpan, BitExactAcrossExecConfigsAndChunkSizes) {
  for (ArchFamily arch :
       {ArchFamily::kOpt, ArchFamily::kGptj, ArchFamily::kLlama}) {
    const TransformerLM model = micro_model(arch);
    const auto prompt = micro_prompt(model, 13);
    HookChain no_hooks;
    for (bool fp16 : {false, true}) {
      for (bool chunked_accum : {false, true}) {
        const ExecConfig exec{fp16, chunked_accum};
        const RunOutput ref = run_sequential(model, prompt, exec, no_hooks);
        // 2 and 5 exercise ragged tails (13 % chunk != 0, including a
        // final 1-wide chunk); 0 runs the whole prompt as one GEMM.
        for (std::size_t chunk : {std::size_t{2}, std::size_t{5},
                                  std::size_t{0}}) {
          const RunOutput got =
              run_blocked(model, prompt, chunk, exec, no_hooks);
          EXPECT_EQ(got.prefill_logits, ref.prefill_logits)
              << "arch " << static_cast<int>(arch) << " fp16=" << fp16
              << " chunked_accum=" << chunked_accum << " chunk=" << chunk;
          EXPECT_EQ(got.decode_logits, ref.decode_logits)
              << "KV cache diverged: arch " << static_cast<int>(arch)
              << " fp16=" << fp16 << " chunked_accum=" << chunked_accum
              << " chunk=" << chunk;
        }
      }
    }
  }
}

TEST(ForwardSpan, PoolSizeNeverChangesResults) {
  const TransformerLM model = micro_model(ArchFamily::kLlama);
  const auto prompt = micro_prompt(model, 17);
  HookChain no_hooks;
  const RunOutput ref =
      run_sequential(model, prompt, ExecConfig{true, false}, no_hooks);
  ThreadPool one(1);
  ThreadPool four(4);
  for (ThreadPool* pool : {&one, &four}) {
    const ExecConfig exec{true, false, pool};
    const RunOutput got = run_blocked(model, prompt, 8, exec, no_hooks);
    EXPECT_EQ(got.prefill_logits, ref.prefill_logits)
        << "pool size " << pool->size();
    EXPECT_EQ(got.decode_logits, ref.decode_logits)
        << "pool size " << pool->size();
  }
}

/// Expands every dispatch into per-position rows, grouped by layer site.
class SiteRecorder : public OutputHook {
 public:
  struct Observation {
    std::size_t position;
    bool first_token;
    std::vector<float> values;

    bool operator==(const Observation&) const = default;
  };
  using Key = std::pair<int, int>;  // (block, LayerKind)

  void on_output(const HookContext& ctx, std::span<float> values) override {
    auto& seq = by_site_[{ctx.site.block, static_cast<int>(ctx.site.kind)}];
    for (std::size_t r = 0; r < ctx.n_positions; ++r) {
      const auto row = ctx.row(values, r);
      seq.push_back({ctx.position_at(r), ctx.first_token_phase,
                     std::vector<float>(row.begin(), row.end())});
    }
  }

  const std::map<Key, std::vector<Observation>>& by_site() const {
    return by_site_;
  }

 private:
  std::map<Key, std::vector<Observation>> by_site_;
};

TEST(ForwardSpan, HooksObserveSameRowsInSamePerSiteOrder) {
  for (ArchFamily arch : {ArchFamily::kOpt, ArchFamily::kLlama}) {
    const TransformerLM model = micro_model(arch);
    const auto prompt = micro_prompt(model, 11);
    GenerateOptions opts;
    opts.max_new_tokens = 4;
    opts.eos_token = -1;

    SiteRecorder sequential;
    {
      InferenceSession session(model);
      const auto reg = session.hooks().add(sequential);
      GenerateOptions seq_opts = opts;
      seq_opts.prefill_chunk = 1;
      session.generate(prompt, seq_opts);
    }
    SiteRecorder blocked;
    {
      InferenceSession session(model);
      const auto reg = session.hooks().add(blocked);
      GenerateOptions blk_opts = opts;
      blk_opts.prefill_chunk = 4;
      session.generate(prompt, blk_opts);
    }

    ASSERT_FALSE(sequential.by_site().empty());
    ASSERT_EQ(sequential.by_site().size(), blocked.by_site().size());
    for (const auto& [site, seq_obs] : sequential.by_site()) {
      const auto it = blocked.by_site().find(site);
      ASSERT_NE(it, blocked.by_site().end())
          << "site (" << site.first << ", " << site.second
          << ") missing from blocked run";
      const auto& blk_obs = it->second;
      ASSERT_EQ(seq_obs.size(), blk_obs.size());
      for (std::size_t i = 0; i < seq_obs.size(); ++i) {
        EXPECT_EQ(seq_obs[i], blk_obs[i])
            << "site (" << site.first << ", " << site.second << ") row " << i;
        if (i > 0) {
          EXPECT_LT(blk_obs[i - 1].position, blk_obs[i].position);
        }
      }
    }
  }
}

TEST(ForwardSpan, GenerateTokensIndependentOfChunkAndPool) {
  const TransformerLM model = micro_model(ArchFamily::kGptj);
  const auto prompt = micro_prompt(model, 14);
  ThreadPool pool(3);
  GenerateOptions base;
  base.max_new_tokens = 8;
  base.eos_token = -1;

  for (bool fp16 : {false, true}) {
    GenerateOptions ref_opts = base;
    ref_opts.fp16 = fp16;
    ref_opts.prefill_chunk = 1;
    InferenceSession ref_session(model);
    const auto ref = ref_session.generate(prompt, ref_opts);

    for (std::size_t chunk : {std::size_t{3}, std::size_t{32}, std::size_t{0}}) {
      GenerateOptions opts = ref_opts;
      opts.prefill_chunk = chunk;
      opts.pool = &pool;
      InferenceSession session(model);
      const auto got = session.generate(prompt, opts);
      EXPECT_EQ(got.tokens, ref.tokens) << "fp16=" << fp16
                                        << " chunk=" << chunk;
      EXPECT_EQ(got.positions_run, ref.positions_run);
    }
  }
}

TEST(ForwardSpan, CampaignOutcomesIndependentOfPrefillChunk) {
  const TransformerLM model = micro_model(ArchFamily::kOpt);
  const auto gen = make_generator(DatasetKind::kSynthQA);
  const auto samples = gen->generate_many(6, 2024);
  const auto inputs = prepare_eval_inputs(model, samples, 6, false);
  ASSERT_FALSE(inputs.empty());

  CampaignConfig base;
  base.fault_model = FaultModel::kExponentBit;
  base.trials_per_input = 20;
  base.gen_tokens = 6;
  base.seed = 99;
  for (SchemeKind scheme : {SchemeKind::kNone, SchemeKind::kFt2}) {
    CampaignConfig sequential = base;
    sequential.prefill_chunk = 1;
    CampaignConfig blocked = base;
    blocked.prefill_chunk = 8;
    const auto a =
        run_campaign(model, inputs, scheme, BoundStore{}, sequential);
    const auto b = run_campaign(model, inputs, scheme, BoundStore{}, blocked);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.masked_identical, b.masked_identical);
    EXPECT_EQ(a.masked_semantic, b.masked_semantic);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.not_injected, b.not_injected);
  }
}

}  // namespace
}  // namespace ft2
