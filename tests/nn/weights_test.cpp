#include "nn/weights.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ft2 {
namespace {

ModelConfig opt_config() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = 32;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 3;
  c.d_ff = 24;
  c.max_seq = 48;
  return c;
}

ModelConfig llama_config() {
  ModelConfig c = opt_config();
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.qkv_bias = true;
  return c;
}

TEST(Weights, ShapesMatchConfig) {
  const ModelConfig c = llama_config();
  Xoshiro256 rng(1);
  const ModelWeights w = init_weights(c, rng);
  ASSERT_EQ(w.blocks.size(), 3u);
  EXPECT_EQ(w.tok_emb.shape(), (std::vector<std::size_t>{32, 16}));
  EXPECT_EQ(w.pos_emb.numel(), 0u);  // rotary: no learned positions
  EXPECT_EQ(w.lm_head.w.shape(), (std::vector<std::size_t>{32, 16}));
  const auto& blk = w.blocks[0];
  EXPECT_EQ(blk.q.w.shape(), (std::vector<std::size_t>{16, 16}));
  EXPECT_EQ(blk.fc1.w.shape(), (std::vector<std::size_t>{24, 16}));  // gate
  EXPECT_EQ(blk.up.w.shape(), (std::vector<std::size_t>{24, 16}));
  EXPECT_EQ(blk.fc2.w.shape(), (std::vector<std::size_t>{16, 24}));  // down
  EXPECT_EQ(blk.norm1.beta.numel(), 0u);  // RMSNorm has no beta
}

TEST(Weights, BiasFlagsRespected) {
  Xoshiro256 rng(2);
  const ModelWeights llama = init_weights(llama_config(), rng);
  EXPECT_TRUE(llama.blocks[0].q.has_bias);   // qkv_bias
  EXPECT_TRUE(llama.blocks[0].v.has_bias);
  EXPECT_FALSE(llama.blocks[0].o.has_bias);  // no linear_bias
  EXPECT_FALSE(llama.blocks[0].fc1.has_bias);

  const ModelWeights opt = init_weights(opt_config(), rng);
  EXPECT_TRUE(opt.blocks[0].o.has_bias);
  EXPECT_TRUE(opt.blocks[0].fc1.has_bias);
  EXPECT_GT(opt.pos_emb.numel(), 0u);  // learned positions
}

TEST(Weights, NamedParametersUniqueAndComplete) {
  Xoshiro256 rng(3);
  ModelWeights w = init_weights(opt_config(), rng);
  const auto params = w.named_parameters();
  std::set<std::string> names;
  std::size_t total = 0;
  for (const auto& [name, t] : params) {
    EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
    EXPECT_GT(t->numel(), 0u) << name;
    total += t->numel();
  }
  EXPECT_EQ(total, w.parameter_count());
  // Every block contributes its norms and linears.
  EXPECT_TRUE(names.contains("block0.q.w"));
  EXPECT_TRUE(names.contains("block2.fc2.b"));
  EXPECT_TRUE(names.contains("block1.norm2.gamma"));
  EXPECT_TRUE(names.contains("final_norm.beta"));
}

TEST(Weights, InitializationStatistics) {
  Xoshiro256 rng(4);
  const ModelWeights w = init_weights(opt_config(), rng);
  // Token embedding ~ N(0, 0.02).
  double sum = 0.0, sq = 0.0;
  for (float f : w.tok_emb.span()) {
    sum += f;
    sq += static_cast<double>(f) * f;
  }
  const double n = static_cast<double>(w.tok_emb.numel());
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(sq / n), 0.02, 0.01);
  // Norm gammas at 1, betas/biases at 0.
  for (float f : w.blocks[0].norm1.gamma.span()) EXPECT_EQ(f, 1.0f);
  for (float f : w.blocks[0].q.b.span()) EXPECT_EQ(f, 0.0f);
  // Residual projections use the scaled-down init.
  double o_sq = 0.0;
  for (float f : w.blocks[0].o.w.span()) o_sq += static_cast<double>(f) * f;
  const double o_std =
      std::sqrt(o_sq / static_cast<double>(w.blocks[0].o.w.numel()));
  EXPECT_LT(o_std, 0.015);  // 0.02 / sqrt(2*3) ~ 0.008
}

TEST(Weights, LinearAtResolvesEveryKind) {
  Xoshiro256 rng(5);
  {
    const ModelConfig c = opt_config();
    ModelWeights w = init_weights(c, rng);
    EXPECT_EQ(&linear_at(w, c, {1, LayerKind::kQProj}), &w.blocks[1].q);
    EXPECT_EQ(&linear_at(w, c, {0, LayerKind::kFc1}), &w.blocks[0].fc1);
    EXPECT_EQ(&linear_at(w, c, {2, LayerKind::kFc2}), &w.blocks[2].fc2);
    EXPECT_THROW(linear_at(w, c, {0, LayerKind::kGateProj}), Error);
    EXPECT_THROW(linear_at(w, c, {5, LayerKind::kQProj}), Error);
  }
  {
    const ModelConfig c = llama_config();
    ModelWeights w = init_weights(c, rng);
    EXPECT_EQ(&linear_at(w, c, {0, LayerKind::kGateProj}), &w.blocks[0].fc1);
    EXPECT_EQ(&linear_at(w, c, {0, LayerKind::kUpProj}), &w.blocks[0].up);
    EXPECT_EQ(&linear_at(w, c, {0, LayerKind::kDownProj}), &w.blocks[0].fc2);
    EXPECT_THROW(linear_at(w, c, {0, LayerKind::kFc1}), Error);
    EXPECT_THROW(linear_at(w, c, {0, LayerKind::kMlpAct}), Error);
  }
}

TEST(Weights, DifferentSeedsDifferentWeights) {
  Xoshiro256 r1(10), r2(11);
  const ModelWeights a = init_weights(opt_config(), r1);
  const ModelWeights b = init_weights(opt_config(), r2);
  bool differs = false;
  for (std::size_t i = 0; i < a.tok_emb.numel(); ++i) {
    if (a.tok_emb[i] != b.tok_emb[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace ft2
