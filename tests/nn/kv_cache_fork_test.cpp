// Forked-mode KvCache: shared immutable prefix + owned tail.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nn/kv_cache.hpp"

namespace ft2 {
namespace {

/// Fills `n` positions of a 1-block cache with rows [p, p, ..] = p.
void fill(KvCache& cache, std::size_t n, std::size_t d) {
  for (std::size_t p = cache.length(); p < n; ++p) {
    const std::vector<float> row(d, static_cast<float>(p));
    cache.store(0, p, row, row);
    cache.advance();
  }
}

TEST(KvCacheFork, PrefixCopyIsCompact) {
  KvCache cache(1, /*max_seq=*/16, /*d_model=*/4);
  fill(cache, 5, 4);
  const KvCache copy = cache.prefix_copy(3);
  EXPECT_EQ(copy.length(), 3u);
  EXPECT_EQ(copy.max_seq(), 3u);  // rows beyond the copy are not allocated
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(copy.key(0, p)[0], static_cast<float>(p));
    EXPECT_EQ(copy.value(0, p)[3], static_cast<float>(p));
  }
  // [n, d] rows, keys + values, one block.
  EXPECT_EQ(copy.memory_bytes(), 2 * 3 * 4 * sizeof(float));
}

TEST(KvCacheFork, ForkReadsPrefixAndAppendsTail) {
  KvCache base(1, 16, 4);
  fill(base, 6, 4);
  const auto prefix =
      std::make_shared<const KvCache>(base.prefix_copy(base.length()));

  KvCache fork = KvCache::forked(prefix, /*prefix_len=*/4, /*tail_rows=*/3);
  EXPECT_TRUE(fork.forked());
  EXPECT_EQ(fork.prefix_len(), 4u);
  EXPECT_EQ(fork.length(), 4u);
  EXPECT_EQ(fork.max_seq(), 7u);
  // Only the tail is owned: 3 rows of keys + values.
  EXPECT_EQ(fork.memory_bytes(), 2 * 3 * 4 * sizeof(float));

  // Prefix rows resolve through the shared cache; stores continue from the
  // fork point as if the prefix had been computed in place.
  EXPECT_EQ(fork.key(0, 2)[0], 2.0f);
  const std::vector<float> row(4, 40.0f);
  fork.store(0, 4, row, row);
  fork.advance();
  EXPECT_EQ(fork.length(), 5u);
  EXPECT_EQ(fork.key(0, 3)[0], 3.0f);   // still the prefix value
  EXPECT_EQ(fork.key(0, 4)[0], 40.0f);  // the tail write

  // Two forks of the same prefix are independent.
  KvCache other = KvCache::forked(prefix, 4, 3);
  const std::vector<float> row2(4, 99.0f);
  other.store(0, 4, row2, row2);
  other.advance();
  EXPECT_EQ(fork.key(0, 4)[0], 40.0f);
  EXPECT_EQ(other.key(0, 4)[0], 99.0f);
}

TEST(KvCacheFork, ZeroTailForkIsValid) {
  // A fork at the last executed boundary owns no rows at all (clamped
  // campaign forks run zero forwards).
  KvCache base(1, 8, 2);
  fill(base, 4, 2);
  const auto prefix =
      std::make_shared<const KvCache>(base.prefix_copy(4));
  const KvCache fork = KvCache::forked(prefix, 4, 0);
  EXPECT_EQ(fork.length(), 4u);
  EXPECT_EQ(fork.max_seq(), 4u);
  EXPECT_EQ(fork.memory_bytes(), 0u);
  EXPECT_EQ(fork.key(0, 3)[1], 3.0f);
}

}  // namespace
}  // namespace ft2
