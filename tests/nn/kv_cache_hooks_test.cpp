// KV cache bookkeeping and hook-chain semantics.
#include <gtest/gtest.h>

#include "nn/hooks.hpp"
#include "nn/kv_cache.hpp"

namespace ft2 {
namespace {

TEST(KvCache, StoreAndRetrieve) {
  KvCache cache(2, 8, 4);
  EXPECT_EQ(cache.length(), 0u);
  EXPECT_EQ(cache.max_seq(), 8u);

  const std::vector<float> k0 = {1, 2, 3, 4};
  const std::vector<float> v0 = {5, 6, 7, 8};
  cache.store(0, 0, k0, v0);
  cache.store(1, 0, v0, k0);
  cache.advance();
  EXPECT_EQ(cache.length(), 1u);

  const auto key = cache.key(0, 0);
  EXPECT_EQ(key[0], 1.0f);
  EXPECT_EQ(key[3], 4.0f);
  const auto val = cache.value(1, 0);
  EXPECT_EQ(val[0], 1.0f);  // block 1 stored swapped
}

TEST(KvCache, ResetClearsLength) {
  KvCache cache(1, 4, 2);
  const std::vector<float> kv = {1, 2};
  cache.store(0, 0, kv, kv);
  cache.advance();
  cache.reset();
  EXPECT_EQ(cache.length(), 0u);
  // Re-use after reset works.
  cache.store(0, 0, kv, kv);
  cache.advance();
  EXPECT_EQ(cache.length(), 1u);
}

class RecordingHook : public OutputHook {
 public:
  explicit RecordingHook(std::vector<std::string>* log, std::string name,
                         float delta = 0.0f)
      : log_(log), name_(std::move(name)), delta_(delta) {}

  void on_output(const HookContext&, std::span<float> values) override {
    log_->push_back(name_);
    for (float& f : values) f += delta_;
  }
  void on_generation_begin() override { log_->push_back(name_ + ":begin"); }
  void on_generation_end() override { log_->push_back(name_ + ":end"); }

 private:
  std::vector<std::string>* log_;
  std::string name_;
  float delta_;
};

TEST(HookChain, DispatchOrderIsRegistrationOrder) {
  std::vector<std::string> log;
  RecordingHook a(&log, "injector", 1.0f);
  RecordingHook b(&log, "protector", 0.0f);
  HookChain chain;
  const auto reg_a = chain.add(a);
  const auto reg_b = chain.add(b);
  EXPECT_EQ(chain.size(), 2u);

  std::vector<float> values = {0.0f};
  chain.begin();
  chain.dispatch(HookContext{{0, LayerKind::kVProj}, 0, true}, values);
  chain.end();

  const std::vector<std::string> expected = {
      "injector:begin", "protector:begin", "injector", "protector",
      "injector:end",   "protector:end"};
  EXPECT_EQ(log, expected);
  EXPECT_EQ(values[0], 1.0f);  // mutation from the first hook visible
}

TEST(HookChain, LaterHookSeesEarlierMutation) {
  std::vector<std::string> log;
  RecordingHook inject(&log, "i", 100.0f);
  // A "protector" that clamps what it sees.
  class ClampHook : public OutputHook {
   public:
    void on_output(const HookContext&, std::span<float> values) override {
      for (float& f : values) f = std::min(f, 1.0f);
    }
  };
  ClampHook clamp;
  HookChain chain;
  const auto reg_i = chain.add(inject);
  const auto reg_c = chain.add(clamp);
  std::vector<float> values = {0.5f};
  chain.dispatch(HookContext{{0, LayerKind::kFc2}, 3, false}, values);
  EXPECT_EQ(values[0], 1.0f);  // 0.5 + 100 then clamped
}

TEST(HookChain, EmptyChainIsNoop) {
  HookChain chain;
  EXPECT_TRUE(chain.empty());
  std::vector<float> values = {2.0f};
  chain.dispatch(HookContext{{0, LayerKind::kQProj}, 0, false}, values);
  chain.begin();
  chain.end();
  EXPECT_EQ(values[0], 2.0f);
}

TEST(HookChain, ClearRemovesHooks) {
  std::vector<std::string> log;
  RecordingHook a(&log, "a");
  HookChain chain;
  auto reg = chain.add(a);
  chain.clear();
  EXPECT_FALSE(reg.active());
  std::vector<float> values = {1.0f};
  chain.dispatch(HookContext{{0, LayerKind::kQProj}, 0, false}, values);
  EXPECT_TRUE(log.empty());
}

TEST(HookRegistration, ScopeEndsRegistration) {
  std::vector<std::string> log;
  RecordingHook a(&log, "a");
  HookChain chain;
  {
    const auto reg = chain.add(a);
    EXPECT_EQ(chain.size(), 1u);
    EXPECT_TRUE(reg.active());
  }
  EXPECT_TRUE(chain.empty());
  std::vector<float> values = {1.0f};
  chain.dispatch(HookContext{{0, LayerKind::kQProj}, 0, false}, values);
  EXPECT_TRUE(log.empty());
}

TEST(HookRegistration, SafeWhenChainDiesFirst) {
  std::vector<std::string> log;
  RecordingHook a(&log, "a");
  HookRegistration reg;
  {
    HookChain chain;
    reg = chain.add(a);
    EXPECT_TRUE(reg.active());
  }
  EXPECT_FALSE(reg.active());
  reg.release();  // must be a harmless no-op after the chain is gone
}

TEST(HookRegistration, MoveTransfersOwnership) {
  std::vector<std::string> log;
  RecordingHook a(&log, "a");
  HookChain chain;
  auto reg = chain.add(a);
  HookRegistration moved = std::move(reg);
  EXPECT_FALSE(reg.active());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.active());
  moved.release();
  EXPECT_TRUE(chain.empty());
}

TEST(HookRegistration, ReleaseRemovesOnlyItsHook) {
  std::vector<std::string> log;
  RecordingHook a(&log, "a");
  RecordingHook b(&log, "b");
  HookChain chain;
  auto reg_a = chain.add(a);
  const auto reg_b = chain.add(b);
  reg_a.release();
  std::vector<float> values = {0.0f};
  chain.dispatch(HookContext{{0, LayerKind::kQProj}, 0, false}, values);
  EXPECT_EQ(log, std::vector<std::string>{"b"});
}

TEST(HookContext, SpanRowView) {
  const HookContext ctx{{0, LayerKind::kQProj}, 4, true, 3, 2};
  std::vector<float> values = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ctx.n_positions, 3u);
  const auto r1 = ctx.row(std::span<float>(values), 1);
  ASSERT_EQ(r1.size(), 2u);
  EXPECT_EQ(r1[0], 2.0f);
  EXPECT_EQ(ctx.position_at(1), 5u);
  EXPECT_TRUE(ctx.contains_position(4));
  EXPECT_TRUE(ctx.contains_position(6));
  EXPECT_FALSE(ctx.contains_position(3));
  EXPECT_FALSE(ctx.contains_position(7));

  // Single-position dispatch built with the legacy 3-field initializer:
  // row 0 must be the whole span (stride defaults to the span size).
  const HookContext single{{0, LayerKind::kQProj}, 2, false};
  EXPECT_EQ(single.n_positions, 1u);
  EXPECT_EQ(single.row(std::span<float>(values), 0).size(), values.size());
  EXPECT_TRUE(single.contains_position(2));
  EXPECT_FALSE(single.contains_position(3));
}

}  // namespace
}  // namespace ft2
