// KvBlockPool and paged-mode KvCache semantics:
//   - block allocation is LIFO, ref-counted and exhaustion-safe;
//   - a paged cache stores/reads bit-identically to a dense cache;
//   - reserve_rows is all-or-nothing under pool exhaustion;
//   - copy-on-write isolates sharers (cache copies and adopted prefixes);
//   - adopt_shared_prefix keeps blocks alive past the donor's release;
//   - memory accounting is block-granular.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "nn/kv_cache.hpp"
#include "nn/kv_pool.hpp"

namespace ft2 {
namespace {

constexpr std::size_t kLayers = 2;
constexpr std::size_t kDModel = 4;
constexpr std::size_t kBlockRows = 2;

/// Distinct fill value per (layer, position, column, keys-vs-values).
float fill(std::size_t layer, std::size_t pos, std::size_t col, bool value) {
  return static_cast<float>(layer * 1000 + pos * 10 + col) +
         (value ? 0.5f : 0.0f);
}

std::vector<float> row_of(std::size_t layer, std::size_t pos, bool value) {
  std::vector<float> row(kDModel);
  for (std::size_t c = 0; c < kDModel; ++c) row[c] = fill(layer, pos, c, value);
  return row;
}

/// Appends position `pos` (every layer) to `cache` and advances.
void append_row(KvCache& cache, std::size_t pos) {
  for (std::size_t layer = 0; layer < kLayers; ++layer) {
    cache.store(layer, pos, row_of(layer, pos, false), row_of(layer, pos, true));
  }
  cache.advance();
}

void expect_row(const KvCache& cache, std::size_t pos, const char* what) {
  for (std::size_t layer = 0; layer < kLayers; ++layer) {
    const auto k = cache.key(layer, pos);
    const auto v = cache.value(layer, pos);
    for (std::size_t c = 0; c < kDModel; ++c) {
      EXPECT_EQ(k[c], fill(layer, pos, c, false))
          << what << ": key layer " << layer << " pos " << pos << " col " << c;
      EXPECT_EQ(v[c], fill(layer, pos, c, true))
          << what << ": value layer " << layer << " pos " << pos << " col "
          << c;
    }
  }
}

TEST(KvPool, AllocReleaseRefcount) {
  KvBlockPool pool(kLayers, kDModel, /*total_blocks=*/3, kBlockRows);
  EXPECT_EQ(pool.total_blocks(), 3u);
  EXPECT_EQ(pool.free_blocks(), 3u);

  KvBlockPool::BlockId a = KvBlockPool::kInvalidBlock;
  KvBlockPool::BlockId b = KvBlockPool::kInvalidBlock;
  KvBlockPool::BlockId c = KvBlockPool::kInvalidBlock;
  ASSERT_TRUE(pool.try_alloc(a));
  ASSERT_TRUE(pool.try_alloc(b));
  ASSERT_TRUE(pool.try_alloc(c));
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(pool.used_blocks(), 3u);

  KvBlockPool::BlockId overflow = KvBlockPool::kInvalidBlock;
  EXPECT_FALSE(pool.try_alloc(overflow));

  EXPECT_EQ(pool.ref_count(a), 1u);
  pool.add_ref(a);
  EXPECT_EQ(pool.ref_count(a), 2u);
  pool.release(a);
  EXPECT_EQ(pool.ref_count(a), 1u);
  EXPECT_EQ(pool.free_blocks(), 0u);  // still referenced once
  pool.release(a);
  EXPECT_EQ(pool.free_blocks(), 1u);

  // LIFO reuse: the block released last comes back first.
  KvBlockPool::BlockId again = KvBlockPool::kInvalidBlock;
  ASSERT_TRUE(pool.try_alloc(again));
  EXPECT_EQ(again, a);

  pool.release(b);
  pool.release(c);
  pool.release(again);
  EXPECT_EQ(pool.free_blocks(), 3u);
}

TEST(KvPool, CopyBlockCopiesEveryLayer) {
  KvBlockPool pool(kLayers, kDModel, /*total_blocks=*/2, kBlockRows);
  KvBlockPool::BlockId src = KvBlockPool::kInvalidBlock;
  KvBlockPool::BlockId dst = KvBlockPool::kInvalidBlock;
  ASSERT_TRUE(pool.try_alloc(src));
  ASSERT_TRUE(pool.try_alloc(dst));

  for (std::size_t layer = 0; layer < kLayers; ++layer) {
    for (std::size_t r = 0; r < kBlockRows; ++r) {
      const auto k = row_of(layer, r, false);
      const auto v = row_of(layer, r, true);
      std::copy(k.begin(), k.end(), pool.key_row(layer, src, r).begin());
      std::copy(v.begin(), v.end(), pool.value_row(layer, src, r).begin());
    }
  }
  pool.copy_block(src, dst);
  for (std::size_t layer = 0; layer < kLayers; ++layer) {
    for (std::size_t r = 0; r < kBlockRows; ++r) {
      const auto k = pool.key_row(layer, dst, r);
      const auto v = pool.value_row(layer, dst, r);
      for (std::size_t c = 0; c < kDModel; ++c) {
        EXPECT_EQ(k[c], fill(layer, r, c, false));
        EXPECT_EQ(v[c], fill(layer, r, c, true));
      }
    }
  }
  pool.release(src);
  pool.release(dst);
}

TEST(KvCachePaged, StoreReadMatchesDense) {
  const std::size_t max_seq = 8;
  KvBlockPool pool(kLayers, kDModel, /*total_blocks=*/4, kBlockRows);
  KvCache dense(kLayers, max_seq, kDModel);
  KvCache paged = KvCache::paged(pool, max_seq);
  EXPECT_TRUE(paged.paged());
  EXPECT_FALSE(dense.paged());
  EXPECT_EQ(paged.physical_rows(), 0u);

  for (std::size_t pos = 0; pos < max_seq; ++pos) {
    ASSERT_TRUE(paged.reserve_rows(1));
    append_row(dense, pos);
    append_row(paged, pos);
  }
  EXPECT_EQ(paged.length(), dense.length());
  EXPECT_EQ(paged.block_table().size(), 4u);
  EXPECT_EQ(paged.physical_rows(), max_seq);
  for (std::size_t pos = 0; pos < max_seq; ++pos) {
    expect_row(dense, pos, "dense");
    expect_row(paged, pos, "paged");
  }
  // Block-granular accounting: exactly the mapped blocks.
  EXPECT_EQ(paged.memory_bytes(), 4u * pool.block_bytes());
}

TEST(KvCachePaged, ReserveRowsIsAllOrNothing) {
  KvBlockPool pool(kLayers, kDModel, /*total_blocks=*/3, kBlockRows);
  KvCache a = KvCache::paged(pool, /*max_seq=*/8);
  ASSERT_TRUE(a.reserve_rows(2));  // 1 block
  EXPECT_EQ(pool.free_blocks(), 2u);

  // b needs 3 blocks for 5 rows but only 2 are free: nothing may leak.
  KvCache b = KvCache::paged(pool, /*max_seq=*/8);
  EXPECT_FALSE(b.reserve_rows(5));
  EXPECT_EQ(pool.free_blocks(), 2u);
  EXPECT_TRUE(b.block_table().empty());

  // A fitting reservation still succeeds afterwards.
  EXPECT_TRUE(b.reserve_rows(3));
  EXPECT_EQ(b.block_table().size(), 2u);
  EXPECT_EQ(pool.free_blocks(), 0u);
}

TEST(KvCachePaged, CopyOnWriteIsolatesSharers) {
  KvBlockPool pool(kLayers, kDModel, /*total_blocks=*/4, kBlockRows);
  KvCache a = KvCache::paged(pool, /*max_seq=*/8);
  ASSERT_TRUE(a.reserve_rows(1));
  append_row(a, 0);  // half a block: the next store lands in a shared block

  KvCache b(a);  // copy maps the same block with an extra reference
  ASSERT_EQ(a.block_table(), b.block_table());
  EXPECT_EQ(pool.ref_count(a.block_table()[0]), 2u);
  EXPECT_EQ(b.length(), 1u);

  // b appends into the shared block: copy-on-write gives b a private block,
  // a's rows are untouched and the tables diverge.
  ASSERT_TRUE(b.reserve_rows(1));
  append_row(b, 1);
  EXPECT_NE(a.block_table()[0], b.block_table()[0]);
  EXPECT_EQ(pool.ref_count(a.block_table()[0]), 1u);
  EXPECT_EQ(pool.ref_count(b.block_table()[0]), 1u);
  expect_row(a, 0, "original after COW");
  expect_row(b, 0, "copy reads the copied row");
  expect_row(b, 1, "copy's private append");
  EXPECT_EQ(a.length(), 1u);
  EXPECT_EQ(b.length(), 2u);
}

TEST(KvCachePaged, AdoptSharedPrefixOutlivesDonor) {
  KvBlockPool pool(kLayers, kDModel, /*total_blocks=*/4, kBlockRows);
  KvCache donor = KvCache::paged(pool, /*max_seq=*/8);
  ASSERT_TRUE(donor.reserve_rows(4));  // 2 full blocks
  for (std::size_t pos = 0; pos < 4; ++pos) append_row(donor, pos);

  KvCache sharer = KvCache::paged(pool, /*max_seq=*/8);
  sharer.adopt_shared_prefix(donor.block_table(), /*rows=*/4);
  EXPECT_EQ(sharer.length(), 4u);
  EXPECT_EQ(pool.ref_count(donor.block_table()[0]), 2u);
  for (std::size_t pos = 0; pos < 4; ++pos) {
    expect_row(sharer, pos, "adopted prefix");
  }

  // The sharer continues past the prefix in its own fresh block.
  ASSERT_TRUE(sharer.reserve_rows(1));
  append_row(sharer, 4);
  expect_row(donor, 0, "donor unaffected");
  EXPECT_EQ(donor.length(), 4u);

  // Donor releases: the shared blocks stay alive through the sharer's refs.
  donor.release_storage();
  EXPECT_EQ(pool.used_blocks(), 3u);
  for (std::size_t pos = 0; pos < 5; ++pos) {
    expect_row(sharer, pos, "after donor release");
  }

  sharer.release_storage();
  EXPECT_EQ(pool.free_blocks(), pool.total_blocks());
}

TEST(KvCachePaged, PrefixCopyMatchesStoredRows) {
  KvBlockPool pool(kLayers, kDModel, /*total_blocks=*/2, kBlockRows);
  KvCache paged = KvCache::paged(pool, /*max_seq=*/4);
  ASSERT_TRUE(paged.reserve_rows(3));
  for (std::size_t pos = 0; pos < 3; ++pos) append_row(paged, pos);

  // The swap-preemption snapshot: a compact dense copy of the first rows.
  const KvCache snapshot = paged.prefix_copy(2);
  EXPECT_FALSE(snapshot.paged());
  EXPECT_EQ(snapshot.length(), 2u);
  for (std::size_t pos = 0; pos < 2; ++pos) {
    expect_row(snapshot, pos, "prefix_copy");
  }
}

TEST(KvCachePaged, ReleaseStorageKeepsCacheReusable) {
  KvBlockPool pool(kLayers, kDModel, /*total_blocks=*/2, kBlockRows);
  KvCache cache = KvCache::paged(pool, /*max_seq=*/4);
  ASSERT_TRUE(cache.reserve_rows(3));
  for (std::size_t pos = 0; pos < 3; ++pos) append_row(cache, pos);
  EXPECT_EQ(pool.used_blocks(), 2u);

  // What preemption does: blocks go home, the cache stays a (now empty)
  // paged cache over the same pool and can be refilled.
  cache.release_storage();
  EXPECT_EQ(pool.used_blocks(), 0u);
  EXPECT_TRUE(cache.paged());
  EXPECT_EQ(cache.length(), 0u);
  ASSERT_TRUE(cache.reserve_rows(2));
  append_row(cache, 0);
  append_row(cache, 1);
  expect_row(cache, 0, "refill after release");
  expect_row(cache, 1, "refill after release");
}

}  // namespace
}  // namespace ft2
