#include "nn/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "nn/model.hpp"

namespace ft2 {
namespace {

ModelConfig small_config() {
  ModelConfig c;
  c.name = "ckpt-test";
  c.arch = ArchFamily::kLlama;
  c.vocab_size = 19;
  c.d_model = 8;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 12;
  c.max_seq = 16;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.qkv_bias = true;
  return c;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Checkpoint, RoundTripPreservesEverything) {
  const ModelConfig config = small_config();
  Xoshiro256 rng(3);
  ModelWeights weights = init_weights(config, rng);
  const std::string path = temp_path("ft2_ckpt_roundtrip.bin");

  save_checkpoint(path, config, weights);
  ASSERT_TRUE(checkpoint_exists(path));

  ModelConfig loaded_config;
  ModelWeights loaded;
  load_checkpoint(path, loaded_config, loaded);

  EXPECT_EQ(loaded_config.name, config.name);
  EXPECT_EQ(loaded_config.vocab_size, config.vocab_size);
  EXPECT_EQ(loaded_config.d_model, config.d_model);
  EXPECT_EQ(loaded_config.qkv_bias, config.qkv_bias);
  EXPECT_EQ(static_cast<int>(loaded_config.arch),
            static_cast<int>(config.arch));

  const auto orig = weights.named_parameters();
  const auto got = loaded.named_parameters();
  ASSERT_EQ(orig.size(), got.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(orig[i].first, got[i].first);
    ASSERT_EQ(orig[i].second->numel(), got[i].second->numel());
    for (std::size_t j = 0; j < orig[i].second->numel(); ++j) {
      EXPECT_EQ((*orig[i].second)[j], (*got[i].second)[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadedModelGeneratesIdentically) {
  const ModelConfig config = small_config();
  Xoshiro256 rng(11);
  TransformerLM model(config, init_weights(config, rng));
  const std::string path = temp_path("ft2_ckpt_gen.bin");
  save_checkpoint(path, model.config(), model.weights());

  ModelConfig c2;
  ModelWeights w2;
  load_checkpoint(path, c2, w2);
  TransformerLM model2(c2, std::move(w2));

  InferenceSession s1(model), s2(model2);
  GenerateOptions opts;
  opts.max_new_tokens = 10;
  const std::vector<int> prompt = {1, 4, 2};
  EXPECT_EQ(s1.generate(prompt, opts).tokens, s2.generate(prompt, opts).tokens);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  ModelConfig c;
  ModelWeights w;
  EXPECT_THROW(load_checkpoint("/nonexistent/nowhere.bin", c, w), Error);
  EXPECT_FALSE(checkpoint_exists("/nonexistent/nowhere.bin"));
}

TEST(Checkpoint, BadMagicRejected) {
  const std::string path = temp_path("ft2_ckpt_bad.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOPE-not-a-checkpoint";
  }
  EXPECT_FALSE(checkpoint_exists(path));
  ModelConfig c;
  ModelWeights w;
  EXPECT_THROW(load_checkpoint(path, c, w), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedFileThrows) {
  const ModelConfig config = small_config();
  Xoshiro256 rng(3);
  ModelWeights weights = init_weights(config, rng);
  const std::string path = temp_path("ft2_ckpt_trunc.bin");
  save_checkpoint(path, config, weights);

  // Truncate to half size.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  ModelConfig c;
  ModelWeights w;
  EXPECT_THROW(load_checkpoint(path, c, w), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ft2
