// Inference-engine behaviour: determinism, hook dispatch, KV-cache
// consistency against the independent training-path forward, generation.
#include "nn/model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "train/backprop.hpp"

namespace ft2 {
namespace {

ModelConfig micro_config(ArchFamily arch) {
  ModelConfig c;
  c.name = "micro";
  c.arch = arch;
  c.vocab_size = 23;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 2;
  c.d_ff = 24;
  c.max_seq = 32;
  switch (arch) {
    case ArchFamily::kOpt:
      break;
    case ArchFamily::kGptj:
      c.activation = Activation::kGelu;
      c.position = PositionKind::kRotary;
      c.parallel_block = true;
      break;
    case ArchFamily::kLlama:
      c.activation = Activation::kSilu;
      c.norm = NormKind::kRmsNorm;
      c.position = PositionKind::kRotary;
      c.linear_bias = false;
      c.qkv_bias = true;
      break;
  }
  return c;
}

TransformerLM make_model(ArchFamily arch, std::uint64_t seed = 7) {
  ModelConfig c = micro_config(arch);
  Xoshiro256 rng(seed);
  return TransformerLM(c, init_weights(c, rng));
}

class CountingHook : public OutputHook {
 public:
  void on_output(const HookContext& ctx, std::span<float> values) override {
    // Blocked prefill dispatches once per chunk; count positions, not calls.
    const int n = static_cast<int>(ctx.n_positions);
    counts_[static_cast<int>(ctx.site.kind)] += n;
    last_sizes_[static_cast<int>(ctx.site.kind)] = ctx.width(values.size());
    if (ctx.first_token_phase) first_token_calls_ += n;
    total_ += n;
  }
  void on_generation_begin() override { ++begins_; }
  void on_generation_end() override { ++ends_; }

  std::map<int, int> counts_;
  std::map<int, std::size_t> last_sizes_;
  int total_ = 0;
  int begins_ = 0;
  int ends_ = 0;
  int first_token_calls_ = 0;
};

class ModelArchTest : public ::testing::TestWithParam<ArchFamily> {};

TEST_P(ModelArchTest, GenerationIsDeterministic) {
  const TransformerLM model = make_model(GetParam());
  InferenceSession s1(model), s2(model);
  const std::vector<int> prompt = {1, 5, 9, 3};
  GenerateOptions opts;
  opts.max_new_tokens = 8;
  const auto r1 = s1.generate(prompt, opts);
  const auto r2 = s2.generate(prompt, opts);
  EXPECT_EQ(r1.tokens, r2.tokens);
  EXPECT_EQ(r1.tokens.size(), 8u);
}

TEST_P(ModelArchTest, SessionIsReusable) {
  const TransformerLM model = make_model(GetParam());
  InferenceSession session(model);
  const std::vector<int> prompt = {2, 4, 6};
  GenerateOptions opts;
  opts.max_new_tokens = 5;
  const auto r1 = session.generate(prompt, opts);
  const auto r2 = session.generate(prompt, opts);
  EXPECT_EQ(r1.tokens, r2.tokens);
}

TEST_P(ModelArchTest, HooksFireForEveryLinearAtEveryPosition) {
  const TransformerLM model = make_model(GetParam());
  const ModelConfig& cfg = model.config();
  InferenceSession session(model);
  CountingHook hook;
  const auto reg = session.hooks().add(hook);

  const std::vector<int> prompt = {1, 2, 3, 4, 5};
  GenerateOptions opts;
  opts.max_new_tokens = 3;
  const auto result = session.generate(prompt, opts);

  const auto positions = static_cast<int>(result.positions_run);
  for (LayerKind kind : cfg.block_layers()) {
    const int expected = positions * static_cast<int>(cfg.n_blocks);
    EXPECT_EQ(hook.counts_[static_cast<int>(kind)], expected)
        << layer_kind_name(kind);
    EXPECT_EQ(hook.last_sizes_[static_cast<int>(kind)],
              cfg.layer_output_dim(kind))
        << layer_kind_name(kind);
  }
  EXPECT_EQ(hook.begins_, 1);
  EXPECT_EQ(hook.ends_, 1);
  // First-token phase = the 5 prompt positions.
  const int sites_per_pos = static_cast<int>(cfg.block_layers().size() *
                                             cfg.n_blocks);
  EXPECT_EQ(hook.first_token_calls_, 5 * sites_per_pos);
}

TEST_P(ModelArchTest, IncrementalMatchesBatchedForwardInFp32) {
  // The KV-cache incremental engine and the training-path batched forward
  // are independent implementations; in FP32 mode they must agree.
  const TransformerLM model = make_model(GetParam());
  const std::vector<int> tokens = {1, 7, 2, 9, 4, 11};

  const Tensor batched = forward_logits(model, tokens);

  KvCache cache = model.make_cache();
  Workspace ws(model.config());
  HookChain hooks;
  std::vector<float> logits(model.config().vocab_size);
  for (std::size_t pos = 0; pos < tokens.size(); ++pos) {
    model.forward_position(tokens[pos], pos, cache, hooks, /*fp16=*/false,
                           /*first_token_phase=*/true, ws, logits);
    for (std::size_t v = 0; v < logits.size(); ++v) {
      EXPECT_NEAR(logits[v], batched.at(pos, v), 2e-4f)
          << "pos=" << pos << " v=" << v;
    }
  }
}

TEST_P(ModelArchTest, Fp16ModeQuantizesButStaysClose) {
  const TransformerLM model = make_model(GetParam());
  KvCache c16 = model.make_cache();
  KvCache c32 = model.make_cache();
  Workspace ws(model.config());
  HookChain hooks;
  std::vector<float> l16(model.config().vocab_size);
  std::vector<float> l32(model.config().vocab_size);
  model.forward_position(3, 0, c16, hooks, true, true, ws, l16);
  model.forward_position(3, 0, c32, hooks, false, true, ws, l32);
  for (std::size_t v = 0; v < l16.size(); ++v) {
    EXPECT_NEAR(l16[v], l32[v], 0.05f) << v;
  }
}

TEST_P(ModelArchTest, EosStopsGeneration) {
  const TransformerLM model = make_model(GetParam());
  InferenceSession session(model);
  GenerateOptions opts;
  opts.max_new_tokens = 20;
  const std::vector<int> prompt = {1, 2};
  const auto free_run = session.generate(prompt, opts);
  ASSERT_EQ(free_run.tokens.size(), 20u);

  // Use the first generated token as "EOS": generation must stop before it.
  opts.eos_token = free_run.tokens[0];
  const auto stopped = session.generate(prompt, opts);
  EXPECT_TRUE(stopped.tokens.empty());
}

TEST_P(ModelArchTest, HookMutationReachesTheLogits) {
  // A hook that perturbs V_PROJ outputs must change the logits — proves
  // hooks see live (not copied) data that feeds downstream computation.
  class BumpVHook : public OutputHook {
   public:
    void on_output(const HookContext& ctx, std::span<float> values) override {
      if (ctx.site.kind == LayerKind::kVProj) {
        for (float& f : values) f += 5.0f;
      }
    }
  };
  const TransformerLM model = make_model(GetParam());
  KvCache c1 = model.make_cache();
  KvCache c2 = model.make_cache();
  Workspace ws(model.config());
  std::vector<float> base(model.config().vocab_size);
  std::vector<float> bumped(model.config().vocab_size);

  HookChain plain;
  model.forward_position(3, 0, c1, plain, true, true, ws, base);

  BumpVHook hook;
  HookChain chain;
  const auto reg = chain.add(hook);
  model.forward_position(3, 0, c2, chain, true, true, ws, bumped);

  float diff = 0.0f;
  for (std::size_t v = 0; v < base.size(); ++v) {
    diff += std::fabs(base[v] - bumped[v]);
  }
  EXPECT_GT(diff, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(AllArchs, ModelArchTest,
                         ::testing::Values(ArchFamily::kOpt, ArchFamily::kGptj,
                                           ArchFamily::kLlama),
                         [](const auto& info) {
                           switch (info.param) {
                             case ArchFamily::kOpt: return "Opt";
                             case ArchFamily::kGptj: return "Gptj";
                             default: return "Llama";
                           }
                         });

TEST(Model, RejectsBadTokensAndPositions) {
  const TransformerLM model = make_model(ArchFamily::kOpt);
  KvCache cache = model.make_cache();
  Workspace ws(model.config());
  HookChain hooks;
  std::vector<float> logits(model.config().vocab_size);
  EXPECT_THROW(model.forward_position(-1, 0, cache, hooks, true, true, ws,
                                      logits),
               Error);
  EXPECT_THROW(model.forward_position(1000, 0, cache, hooks, true, true, ws,
                                      logits),
               Error);
  // Position must equal cache length.
  EXPECT_THROW(model.forward_position(1, 3, cache, hooks, true, true, ws,
                                      logits),
               Error);
}

TEST(Model, WorkspaceShapes) {
  const ModelConfig c = micro_config(ArchFamily::kLlama);
  Workspace ws(c);
  EXPECT_EQ(ws.x.dim(1), c.d_model);
  EXPECT_EQ(ws.f1.dim(1), c.d_ff);
  EXPECT_EQ(ws.scores.dim(1), c.max_seq);
}

TEST(Model, ParameterCountsDifferByArch) {
  const auto opt = make_model(ArchFamily::kOpt);
  const auto llama = make_model(ArchFamily::kLlama);
  // Llama has a third MLP matrix but no biases/pos-emb; both positive.
  EXPECT_GT(opt.weights().parameter_count(), 0u);
  EXPECT_GT(llama.weights().parameter_count(), 0u);
  EXPECT_NE(opt.weights().parameter_count(),
            llama.weights().parameter_count());
}

}  // namespace
}  // namespace ft2
