// Temperature / top-k sampling decode.
#include <gtest/gtest.h>

#include <set>

#include "core/ft2.hpp"

namespace ft2 {
namespace {

TransformerLM micro_model() {
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = 40;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_blocks = 1;
  c.d_ff = 24;
  c.max_seq = 64;
  Xoshiro256 rng(14);
  return TransformerLM(c, init_weights(c, rng));
}

TEST(Sampling, GreedyIsDefaultAndDeterministic) {
  const TransformerLM model = micro_model();
  InferenceSession s(model);
  GenerateOptions opts;
  opts.max_new_tokens = 8;
  const auto a = s.generate(std::vector<int>{1, 2, 3}, opts);
  const auto b = s.generate(std::vector<int>{1, 2, 3}, opts);
  EXPECT_EQ(a.tokens, b.tokens);
}

TEST(Sampling, SameSeedSameSample) {
  const TransformerLM model = micro_model();
  InferenceSession s(model);
  GenerateOptions opts;
  opts.max_new_tokens = 12;
  opts.temperature = 1.0f;
  opts.sample_seed = 99;
  const auto a = s.generate(std::vector<int>{1, 2, 3}, opts);
  const auto b = s.generate(std::vector<int>{1, 2, 3}, opts);
  EXPECT_EQ(a.tokens, b.tokens);
}

TEST(Sampling, DifferentSeedsDiverge) {
  const TransformerLM model = micro_model();
  InferenceSession s(model);
  GenerateOptions opts;
  opts.max_new_tokens = 16;
  opts.temperature = 2.0f;  // hot enough that divergence is near-certain
  opts.sample_seed = 1;
  const auto a = s.generate(std::vector<int>{1, 2, 3}, opts);
  opts.sample_seed = 2;
  const auto b = s.generate(std::vector<int>{1, 2, 3}, opts);
  EXPECT_NE(a.tokens, b.tokens);
}

TEST(Sampling, LowTemperatureApproachesGreedy) {
  const TransformerLM model = micro_model();
  InferenceSession s(model);
  GenerateOptions greedy;
  greedy.max_new_tokens = 10;
  const auto g = s.generate(std::vector<int>{5, 6}, greedy);

  GenerateOptions cold = greedy;
  cold.temperature = 1e-4f;
  const auto c = s.generate(std::vector<int>{5, 6}, cold);
  EXPECT_EQ(g.tokens, c.tokens);
}

TEST(Sampling, TopOneEqualsGreedy) {
  const TransformerLM model = micro_model();
  InferenceSession s(model);
  GenerateOptions greedy;
  greedy.max_new_tokens = 10;
  const auto g = s.generate(std::vector<int>{7, 8, 9}, greedy);

  GenerateOptions top1 = greedy;
  top1.temperature = 3.0f;
  top1.top_k = 1;
  const auto t = s.generate(std::vector<int>{7, 8, 9}, top1);
  EXPECT_EQ(g.tokens, t.tokens);
}

TEST(Sampling, HighTemperatureExploresVocab) {
  const TransformerLM model = micro_model();
  InferenceSession s(model);
  GenerateOptions opts;
  opts.max_new_tokens = 30;
  opts.temperature = 50.0f;  // near-uniform
  std::set<int> seen;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    opts.sample_seed = seed;
    for (int t : s.generate(std::vector<int>{1}, opts).tokens) seen.insert(t);
  }
  // Near-uniform sampling over 40 tokens for 150 draws covers most of them.
  EXPECT_GT(seen.size(), 20u);
}

TEST(Sampling, CrossRunDeterminismUnderSessionAndServePaths) {
  // The same seeded sampling request must yield one token stream across
  // repeated runs of BOTH decode paths — per-session generate and the
  // batched serve engine — and the two paths must agree with each other.
  const TransformerLM model = micro_model();
  const std::vector<int> prompt{1, 2, 3, 4};
  GenerateOptions opts;
  opts.max_new_tokens = 12;
  opts.temperature = 0.9f;
  opts.top_k = 5;
  opts.sample_seed = 77;

  std::vector<int> session_tokens;
  for (int run = 0; run < 2; ++run) {
    InferenceSession s(model);
    const auto result = s.generate(prompt, opts);
    if (run == 0) {
      session_tokens = result.tokens;
      ASSERT_FALSE(session_tokens.empty());
    } else {
      EXPECT_EQ(result.tokens, session_tokens) << "session run " << run;
    }
  }

  for (int run = 0; run < 2; ++run) {
    ServeEngine engine(model);
    // A second request with a different seed shares the batch, exercising
    // per-request RNG isolation.
    const RequestId id = engine.submit(prompt, opts);
    GenerateOptions other = opts;
    other.sample_seed = 78;
    other.top_k = 4;
    const RequestId decoy = engine.submit(prompt, other);
    engine.run();
    EXPECT_EQ(engine.result(id).tokens, session_tokens) << "serve run " << run;
    EXPECT_NE(engine.result(decoy).tokens, session_tokens);
  }
}

TEST(Perplexity, TrainedModelBeatsRandom) {
  // A briefly-trained model must have lower answer perplexity than a
  // random-weight model of the same shape.
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 24;
  c.n_heads = 2;
  c.n_blocks = 1;
  c.d_ff = 32;
  c.max_seq = 96;
  Xoshiro256 rng(15);
  TransformerLM model(c, init_weights(c, rng));
  const auto gen = make_generator(DatasetKind::kSynthQA);

  const double before = evaluate_perplexity(model, *gen, 16, 5);
  TrainerConfig tc;
  tc.steps = 60;
  tc.warmup_steps = 5;
  tc.eval_every = 0;
  train_model(model, {gen.get()}, tc);
  const double after = evaluate_perplexity(model, *gen, 16, 5);
  EXPECT_LT(after, before * 0.8);
  EXPECT_GT(after, 1.0);
}

}  // namespace
}  // namespace ft2
