#include "nn/config.hpp"

#include <gtest/gtest.h>

namespace ft2 {
namespace {

TEST(Config, BlockLayersPerFamily) {
  ModelConfig opt;
  opt.arch = ArchFamily::kOpt;
  const auto opt_layers = opt.block_layers();
  EXPECT_EQ(opt_layers.size(), 7u);  // 6 linears + MLP_ACT
  EXPECT_TRUE(opt.has_layer(LayerKind::kFc1));
  EXPECT_FALSE(opt.has_layer(LayerKind::kGateProj));

  ModelConfig llama;
  llama.arch = ArchFamily::kLlama;
  const auto llama_layers = llama.block_layers();
  EXPECT_EQ(llama_layers.size(), 8u);  // 7 linears + MLP_ACT
  EXPECT_TRUE(llama.has_layer(LayerKind::kUpProj));
  EXPECT_FALSE(llama.has_layer(LayerKind::kFc1));
}

TEST(Config, LayerOutputDims) {
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.d_model = 64;
  c.d_ff = 176;
  EXPECT_EQ(c.layer_output_dim(LayerKind::kQProj), 64u);
  EXPECT_EQ(c.layer_output_dim(LayerKind::kOutProj), 64u);
  EXPECT_EQ(c.layer_output_dim(LayerKind::kGateProj), 176u);
  EXPECT_EQ(c.layer_output_dim(LayerKind::kUpProj), 176u);
  EXPECT_EQ(c.layer_output_dim(LayerKind::kDownProj), 64u);
  EXPECT_EQ(c.layer_output_dim(LayerKind::kMlpAct), 176u);
}

TEST(Config, HeadDim) {
  ModelConfig c;
  c.d_model = 64;
  c.n_heads = 4;
  EXPECT_EQ(c.head_dim(), 16u);
}

TEST(Config, BiasRules) {
  ModelConfig opt;
  opt.linear_bias = true;
  EXPECT_TRUE(opt.layer_has_bias(LayerKind::kQProj));
  EXPECT_TRUE(opt.layer_has_bias(LayerKind::kFc2));

  ModelConfig llama;
  llama.linear_bias = false;
  EXPECT_FALSE(llama.layer_has_bias(LayerKind::kQProj));

  ModelConfig qwen = llama;
  qwen.qkv_bias = true;
  EXPECT_TRUE(qwen.layer_has_bias(LayerKind::kQProj));
  EXPECT_TRUE(qwen.layer_has_bias(LayerKind::kVProj));
  EXPECT_FALSE(qwen.layer_has_bias(LayerKind::kOutProj));
  EXPECT_FALSE(qwen.layer_has_bias(LayerKind::kDownProj));
}

TEST(LayerKind, NamesAndLinearClassification) {
  EXPECT_EQ(layer_kind_name(LayerKind::kVProj), "V_PROJ");
  EXPECT_EQ(layer_kind_name(LayerKind::kMlpAct), "MLP_ACT");
  EXPECT_TRUE(is_linear_layer(LayerKind::kUpProj));
  EXPECT_FALSE(is_linear_layer(LayerKind::kMlpAct));
  EXPECT_FALSE(is_linear_layer(LayerKind::kCount));
}

TEST(LayerSite, Equality) {
  const LayerSite a{1, LayerKind::kVProj};
  const LayerSite b{1, LayerKind::kVProj};
  const LayerSite c{2, LayerKind::kVProj};
  const LayerSite d{1, LayerKind::kQProj};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

}  // namespace
}  // namespace ft2
